"""Incremental re-decision of deadlock-free-routing *existence* under link deltas.

:func:`repro.verify.existence.decide_existence` answers a network-level
question, so the only deltas that can move it are the structural ones --
:class:`~repro.incremental.deltas.LinkDown` and
:class:`~repro.incremental.deltas.LinkUp`.  An :class:`ExistenceSession`
keeps the current verdict hot across a flap stream and re-decides as
little as possible:

* **monotone fast paths** -- orderability is monotone in the arc set
  (extra arcs go at the top of an order, never breaking it), so a
  ``LinkUp`` on a cached YES keeps YES: the old schedule is remapped to
  the new cids, the fresh arcs appended, and the result re-simulated.
  Dually a ``LinkDown`` on a cached NO keeps NO whenever the
  obstruction's channels survive: fewer paths only strengthen an
  unavoidability constraint, and each :class:`ForcedStep` is re-verified
  from raw reachability rather than trusted.
* **certificate revalidation** -- a ``LinkDown`` on a YES replays the
  surviving schedule through :func:`simulate_schedule`; only a schedule
  that actually relied on the downed channel forces a fresh decision.
  (``LinkUp`` on a NO has no shortcut: the new arc may create the very
  paths the obstruction needed to be unavoidable.)
* **dirty-SCC refresh** -- the session keeps the link-channel adjacency
  :class:`~repro.core.depgraph.DepGraph`
  (:func:`~repro.core.depgraph.channel_adjacency`) and refreshes its
  Tarjan decomposition through
  :meth:`~repro.core.depgraph.DepGraph.refresh_scc_from` on every delta,
  reporting the dirty-component frontier alongside the verdict; the
  ``scc_frontier_violations`` tripwire stays pinned at zero.

Incremental-vs-cold agreement is pinned on the :func:`semantic_digest`
-- the network shape plus the decided ``exists``/``authoritative`` bits
-- not on the full certificate digest: the fast paths legitimately carry
a *different* (remapped) certificate than a cold run would construct,
and either certificate is acceptable because both are machine-verified
against the current network before the verdict is returned.

Channels are tracked as ``(src, dst, vc)`` triples because rebuilding a
network renumbers cids; certificates cross the rebuild boundary through
:func:`~repro.verify.existence.schedule_triples` /
``schedule_from_triples`` and the per-step remapping in
:meth:`ExistenceSession._remap_obstruction`.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any

from ..core.depgraph import DepGraph, channel_adjacency
from ..topology.network import Network, NetworkError
from ..verify.existence import (
    ExistenceVerdict,
    ForcedStep,
    Obstruction,
    decide_existence,
    schedule_from_triples,
    schedule_triples,
    verify_schedule,
)
from .deltas import Delta, LinkDown, LinkUp

__all__ = [
    "ExistenceDecision",
    "ExistenceSession",
    "default_link_flap",
    "semantic_digest",
]

Triple = tuple[int, int, int]


def semantic_digest(verdict: ExistenceVerdict) -> str:
    """Digest of the *decision* (network shape + verdict bits), not the proof.

    Two runs that agree on whether a deadlock-free routing exists hash
    identically even when they constructed different certificates; the
    delta matrix pins incremental-vs-cold equality on this.
    """
    payload = {
        "network": verdict.network,
        "num_nodes": verdict.num_nodes,
        "num_channels": verdict.num_channels,
        "exists": verdict.exists,
        "authoritative": verdict.authoritative,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()


@dataclass
class ExistenceDecision:
    """One (re-)decision: the verdict plus how it was obtained."""

    verdict: ExistenceVerdict
    #: :func:`semantic_digest` of the verdict -- the incremental-vs-cold
    #: pinning key
    digest: str
    #: True when a monotone fast path revalidated the previous certificate
    #: instead of running the full decision pipeline
    reused: bool
    seconds: float
    #: dirty-SCC refresh stats of the channel-adjacency kernel (empty on
    #: the baseline decision)
    refresh: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        how = "reused certificate" if self.reused else "re-decided"
        return (
            f"{self.verdict.describe()} [{how}, {self.seconds * 1000:.1f}ms, "
            f"dirty sccs={self.refresh.get('scc_dirty_components', 0)}]"
        )


class ExistenceSession:
    """Existence verdicts for one network under a stream of link deltas."""

    def __init__(self, network: Network, **decide_kwargs: Any) -> None:
        self._decide_kwargs = decide_kwargs
        self._triples: list[Triple] = [
            (c.src, c.dst, c.vc) for c in network.link_channels
        ]
        self._name = network.name
        self._network = network
        self._adjacency: DepGraph = channel_adjacency(network)
        self._last: ExistenceDecision | None = None
        self.stats = {"decisions": 0, "reused": 0, "redecided": 0}

    # ------------------------------------------------------------------
    @property
    def network(self) -> Network:
        """The current network (rebuilt after each structural delta)."""
        return self._network

    def decide(self) -> ExistenceDecision:
        """The current verdict (cached; decides cold on first use)."""
        if self._last is None:
            self._last = self._cold(refresh={})
        return self._last

    def full_decide(self) -> ExistenceDecision:
        """A cold decision on the current network (audit path, uncached)."""
        t0 = time.perf_counter()
        verdict = decide_existence(self._network, **self._decide_kwargs)
        return ExistenceDecision(
            verdict=verdict,
            digest=semantic_digest(verdict),
            reused=False,
            seconds=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------------
    def apply(self, delta: Delta) -> ExistenceDecision:
        """Apply a link delta and return the (re-)decided verdict."""
        previous = self.decide().verdict
        t0 = time.perf_counter()
        old_network = self._network
        # capture the previous certificate in cid-stable form before the
        # rebuild renumbers everything
        prev_schedule: tuple[Triple, ...] | None = None
        prev_steps: tuple[tuple[Triple, Triple, int, int], ...] | None = None
        if previous.exists is True and previous.schedule is not None:
            prev_schedule = schedule_triples(old_network, previous.schedule)
        elif (
            previous.exists is False
            and previous.obstruction is not None
            and previous.obstruction.kind == "forced-cycle"
        ):
            prev_steps = tuple(
                (
                    self._triple_on(old_network, s.before),
                    self._triple_on(old_network, s.after),
                    s.source,
                    s.dest,
                )
                for s in previous.obstruction.steps
            )
        if isinstance(delta, LinkDown):
            triple = (delta.src, delta.dst, delta.vc)
            if triple not in self._triples:
                raise ValueError(f"no link channel {triple} to take down")
            self._triples.remove(triple)
        elif isinstance(delta, LinkUp):
            triple = (delta.src, delta.dst, delta.vc)
            if triple in self._triples:
                raise ValueError(f"link channel {triple} is already up")
            self._triples.append(triple)
        else:
            raise ValueError(
                f"existence is a network-level question; delta "
                f"{type(delta).__name__} does not change the channel digraph"
            )
        old_adjacency = self._adjacency
        self._network = self._rebuild()
        self._adjacency = channel_adjacency(self._network)
        touched = [
            c.cid
            for c in old_network.link_channels
            if (c.src, c.dst) == (delta.src, delta.dst)
            or c.src == delta.dst
            or c.dst == delta.src
        ]
        refresh = self._adjacency.refresh_scc_from(old_adjacency, touched)
        fast = self._fast_path(previous, delta, prev_schedule, prev_steps)
        self.stats["decisions"] += 1
        if fast is not None:
            self.stats["reused"] += 1
            self._last = ExistenceDecision(
                verdict=fast,
                digest=semantic_digest(fast),
                reused=True,
                seconds=time.perf_counter() - t0,
                refresh=refresh,
            )
            return self._last
        self.stats["redecided"] += 1
        verdict = decide_existence(self._network, **self._decide_kwargs)
        self._last = ExistenceDecision(
            verdict=verdict,
            digest=semantic_digest(verdict),
            reused=False,
            seconds=time.perf_counter() - t0,
            refresh=refresh,
        )
        return self._last

    # ------------------------------------------------------------------
    def _cold(self, *, refresh: dict[str, int]) -> ExistenceDecision:
        t0 = time.perf_counter()
        verdict = decide_existence(self._network, **self._decide_kwargs)
        self.stats["decisions"] += 1
        self.stats["redecided"] += 1
        return ExistenceDecision(
            verdict=verdict,
            digest=semantic_digest(verdict),
            reused=False,
            seconds=time.perf_counter() - t0,
            refresh=refresh,
        )

    def _rebuild(self) -> Network:
        net = Network(self._name)
        net.add_nodes(self._network.num_nodes)
        for src, dst, vc in self._triples:
            net.add_channel(src, dst, vc=vc)
        return net.freeze()

    @staticmethod
    def _triple_on(network: Network, cid: int) -> Triple:
        c = network.channel(cid)
        return (c.src, c.dst, c.vc)

    # ------------------------------------------------------------------
    # monotone fast paths: every reuse re-verifies its certificate against
    # the *current* network from scratch before the verdict is returned
    # ------------------------------------------------------------------
    def _fast_path(
        self,
        previous: ExistenceVerdict,
        delta: Delta,
        prev_schedule: tuple[Triple, ...] | None,
        prev_steps: tuple[tuple[Triple, Triple, int, int], ...] | None,
    ) -> ExistenceVerdict | None:
        if isinstance(delta, LinkUp) and previous.exists is True:
            if prev_schedule is None:
                return None
            # an added arc extends any valid order at the top
            old_cids = schedule_from_triples(self._network, prev_schedule)
            if old_cids is None:
                return None
            fired = set(old_cids)
            added = sorted(
                c.cid for c in self._network.link_channels if c.cid not in fired
            )
            candidate = tuple(old_cids) + tuple(added)
            if verify_schedule(self._network, candidate):
                return self._revalidated(previous, schedule=candidate)
            return None
        if isinstance(delta, LinkDown) and previous.exists is False:
            obstruction = self._remap_obstruction(prev_steps)
            if obstruction is not None and obstruction.verify(self._network):
                return self._revalidated(previous, obstruction=obstruction)
            return None
        if isinstance(delta, LinkDown) and previous.exists is True:
            if prev_schedule is None:
                return None
            downed = (delta.src, delta.dst, delta.vc)
            survivors = tuple(t for t in prev_schedule if t != downed)
            new_cids = schedule_from_triples(self._network, survivors)
            if new_cids is not None and verify_schedule(self._network, new_cids):
                return self._revalidated(previous, schedule=new_cids)
            return None
        # LinkUp on a NO: the new arc may create exactly the alternative
        # paths the obstruction needed to be unavoidable -- no shortcut
        return None

    def _remap_obstruction(
        self, prev_steps: tuple[tuple[Triple, Triple, int, int], ...] | None
    ) -> Obstruction | None:
        if not prev_steps:
            return None
        index: dict[Triple, int] = {
            (c.src, c.dst, c.vc): c.cid for c in self._network.link_channels
        }
        steps: list[ForcedStep] = []
        for before_t, after_t, source, dest in prev_steps:
            before = index.get(before_t)
            after = index.get(after_t)
            if before is None or after is None:
                return None
            steps.append(
                ForcedStep(before=before, after=after, source=source, dest=dest)
            )
        return Obstruction(steps=tuple(steps), kind="forced-cycle")

    def _revalidated(
        self,
        previous: ExistenceVerdict,
        *,
        schedule: tuple[int, ...] | None = None,
        obstruction: Obstruction | None = None,
    ) -> ExistenceVerdict:
        return ExistenceVerdict(
            network=self._network.name,
            num_nodes=self._network.num_nodes,
            num_channels=len(self._network.link_channels),
            exists=previous.exists,
            authoritative=True,
            method=f"incremental:{previous.method}",
            schedule=schedule,
            obstruction=obstruction,
            reason=previous.reason,
            evidence={"reused_from": previous.method},
        )


def default_link_flap(network: Network) -> tuple[LinkDown, LinkUp]:
    """The session-default flap pair: down then restore one link channel.

    Picks the lowest-cid link channel whose removal keeps the network
    strongly connected (so the downed network is still a valid instance),
    mirroring the verdict-matrix ``default_fault_pair`` convention.
    """
    for c in network.link_channels:
        trial = Network(network.name)
        trial.add_nodes(network.num_nodes)
        for other in network.link_channels:
            if other.cid != c.cid:
                trial.add_channel(other.src, other.dst, vc=other.vc)
        try:
            trial.freeze()
        except NetworkError:
            continue
        return LinkDown(c.src, c.dst, c.vc), LinkUp(c.src, c.dst, c.vc)
    raise ValueError("no link channel can fail without disconnecting the network")
