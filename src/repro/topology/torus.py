"""k-ary n-cube (torus) topologies, including rings (1D tori).

A torus is a mesh with wrap-around channels.  Channel metadata additionally
records ``wrap=True`` on wrap-around channels (from coordinate ``d-1`` to
``0`` in the positive direction or ``0`` to ``d-1`` in the negative), which
Dally--Seitz-style virtual-channel schemes key their VC switch on.
"""

from __future__ import annotations

from collections.abc import Sequence

from . import grid
from .network import Network


def build_torus(dims: Sequence[int], *, num_vcs: int = 1, name: str | None = None) -> Network:
    """Build a k-ary n-cube with ``num_vcs`` VCs per unidirectional link.

    Radix-2 dimensions get a single pair of channels between the two nodes
    (not a double link), and radix-1 dimensions contribute nothing.
    """
    dims = tuple(int(d) for d in dims)
    if not dims or any(d < 1 for d in dims):
        raise ValueError(f"invalid torus dims {dims}")
    if num_vcs < 1:
        raise ValueError("num_vcs must be >= 1")
    net = Network(name or f"torus{dims}")
    total = 1
    for d in dims:
        total *= d
    net.add_nodes(total)
    net.meta.update(topology="torus", dims=dims, num_vcs=num_vcs, wrap=True)
    for coord in grid.all_coords(dims):
        src = grid.node_id(coord, dims)
        net.coords[src] = coord
        for dim, radix in enumerate(dims):
            if radix == 1:
                continue
            signs: tuple[int, ...] = (+1, -1) if radix > 2 else (+1,)
            for sign in signs:
                nbr = grid.offset_coord(coord, dim, sign, dims, wrap=True)
                assert nbr is not None
                dst = grid.node_id(nbr, dims)
                wrap = (sign > 0 and coord[dim] == radix - 1) or (sign < 0 and coord[dim] == 0)
                for vc in range(num_vcs):
                    net.add_channel(
                        src,
                        dst,
                        vc=vc,
                        label=f"c{vc + 1},{'+' if sign > 0 else '-'}{dim}@{src}",
                        dim=dim,
                        sign=sign,
                        wrap=wrap,
                    )
    return net.freeze()


def build_ring(size: int, *, num_vcs: int = 1, bidirectional: bool = True, name: str | None = None) -> Network:
    """Build a ring of ``size`` nodes.

    With ``bidirectional=False`` only clockwise channels (node ``i`` to
    ``(i+1) % size``) exist, matching the paper's Figure-4 setting.
    """
    if size < 2:
        raise ValueError("ring needs at least 2 nodes")
    if bidirectional:
        return build_torus((size,), num_vcs=num_vcs, name=name or f"ring({size})")
    net = Network(name or f"ring({size},cw)")
    net.add_nodes(size)
    net.meta.update(topology="ring", dims=(size,), num_vcs=num_vcs, wrap=True, unidirectional=True)
    for src in range(size):
        net.coords[src] = (src,)
        dst = (src + 1) % size
        wrap = src == size - 1
        for vc in range(num_vcs):
            net.add_channel(
                src, dst, vc=vc,
                label=f"c{vc + 1},+0@{src}",
                dim=0, sign=+1, wrap=wrap,
            )
    return net.freeze()
