"""3D mesh topologies, dense and pillar-sparse.

:func:`build_mesh3d` is the plain three-dimensional mesh (a thin, explicitly
3D front door over the n-D mesh generator, with its own ``topology`` tag so
the scenario registry can dispatch on the family).

:func:`build_sparse_pillar_3d` models the partially-vertically-connected 3D
networks of the stacked-die literature: every xy-plane is a full 2D mesh,
but vertical (z) links exist only at a configurable subset of ``(x, y)``
columns -- the *pillars*.  Removing pillars bends minimal routes through the
surviving columns, which is exactly the irregular-minimal-candidate stress
the scenario registry feeds to the verifiers: BFS distance is no longer the
Manhattan metric, so routing relations derived from coordinate deltas alone
are wrong here and the table-driven relation recomputes its candidate sets
from the actual graph.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from . import grid
from .network import Network

Pillar = tuple[int, int]


def _check_dims3(dims: Sequence[int]) -> tuple[int, int, int]:
    out = tuple(int(d) for d in dims)
    if len(out) != 3 or any(d < 1 for d in out):
        raise ValueError(f"invalid 3D dims {out}; need three sides >= 1")
    return out  # type: ignore[return-value]


def default_pillars(dims: Sequence[int]) -> tuple[Pillar, ...]:
    """The default kept-pillar pattern: the ``(x + y)`` even checkerboard.

    Keeps roughly half the columns, always including ``(0, 0)``, so every
    plane still reaches every other plane while most vertical bandwidth is
    gone -- the interesting regime for escape-channel analysis.
    """
    x_dim, y_dim, _ = _check_dims3(dims)
    return tuple((x, y) for x in range(x_dim) for y in range(y_dim)
                 if (x + y) % 2 == 0)


def _check_pillars(pillars: Iterable[Pillar] | None,
                   dims: Sequence[int]) -> tuple[Pillar, ...]:
    x_dim, y_dim, _ = _check_dims3(dims)
    if pillars is None:
        return default_pillars(dims)
    out = sorted({(int(x), int(y)) for x, y in pillars})
    if not out:
        raise ValueError("sparse-pillar topology needs at least one kept pillar")
    for x, y in out:
        if not (0 <= x < x_dim and 0 <= y < y_dim):
            raise ValueError(f"pillar {(x, y)} outside the {x_dim}x{y_dim} floorplan")
    return tuple(out)


def _build_grid3(dims: tuple[int, int, int], num_vcs: int, name: str,
                 topology: str, z_columns: frozenset[Pillar] | None) -> Network:
    """Shared generator: full xy connectivity, z links where permitted."""
    if num_vcs < 1:
        raise ValueError("num_vcs must be >= 1")
    net = Network(name)
    net.add_nodes(dims[0] * dims[1] * dims[2])
    net.meta.update(topology=topology, dims=dims, num_vcs=num_vcs, wrap=False)
    for coord in grid.all_coords(dims):
        src = grid.node_id(coord, dims)
        net.coords[src] = coord
        for dim in range(3):
            if dim == 2 and z_columns is not None and (coord[0], coord[1]) not in z_columns:
                continue
            for sign in (+1, -1):
                nbr = grid.offset_coord(coord, dim, sign, dims, wrap=False)
                if nbr is None:
                    continue
                dst = grid.node_id(nbr, dims)
                for vc in range(num_vcs):
                    net.add_channel(
                        src,
                        dst,
                        vc=vc,
                        label=f"c{vc + 1},{'+' if sign > 0 else '-'}{dim}@{src}",
                        dim=dim,
                        sign=sign,
                    )
    return net.freeze()


def build_mesh3d(dims: Sequence[int], *, num_vcs: int = 2,
                 name: str | None = None) -> Network:
    """Build a dense 3D mesh with ``num_vcs`` virtual channels per link.

    Channel metadata matches :func:`~repro.topology.mesh.build_mesh`
    (``dim``, ``sign``, VC index); the network tags itself
    ``topology="mesh3d"`` so scenario dispatch stays family-exact.
    """
    dims3 = _check_dims3(dims)
    return _build_grid3(dims3, num_vcs, name or f"mesh3d{dims3}", "mesh3d", None)


def build_sparse_pillar_3d(dims: Sequence[int], *,
                           pillars: Iterable[Pillar] | None = None,
                           num_vcs: int = 2,
                           name: str | None = None) -> Network:
    """Build a 3D mesh whose vertical links survive only at ``pillars``.

    Parameters
    ----------
    dims:
        ``(x, y, z)`` side lengths.
    pillars:
        The ``(x, y)`` columns that KEEP their vertical links; every other
        column loses all z channels.  ``None`` selects
        :func:`default_pillars`.  Must be nonempty and inside the floorplan;
        the kept set is recorded (sorted, deduplicated) in
        ``net.meta["pillars"]``.
    """
    dims3 = _check_dims3(dims)
    kept = _check_pillars(pillars, dims3)
    net = _build_grid3(dims3, num_vcs,
                       name or f"pillar3d{dims3}", "sparse-pillar",
                       frozenset(kept))
    net.meta["pillars"] = kept
    return net
