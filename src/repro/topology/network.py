"""The interconnection network: a strongly connected directed multigraph.

Definition 1 of the paper: an interconnection network ``I`` is a strongly
connected directed multigraph whose vertices are processors and whose arcs
are (virtual) channels.  :class:`Network` is the single substrate object the
whole library builds on: topology generators produce one, routing algorithms
route over one, the dependency/waiting graphs take their vertex set from one,
and the simulator instantiates buffers for every channel of one.

Construction is incremental (``add_node`` / ``add_channel``) followed by
``freeze()``, after which the network is immutable and exposes dense
index-based lookups that the hot loops rely on.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Any

from .channel import Channel, ChannelKind


class NetworkError(ValueError):
    """Raised for malformed network construction or queries."""


class Network:
    """A strongly connected directed multigraph of nodes and virtual channels.

    Parameters
    ----------
    name:
        Human-readable topology name (e.g. ``"mesh(4,4)"``).

    Notes
    -----
    * Nodes are dense integers ``0 .. num_nodes-1``.
    * Channels are :class:`Channel` objects with dense ``cid``s in creation
      order; link channels, injection channels, and ejection channels share
      one id space.
    * ``coords`` optionally maps nodes to coordinate tuples; topology
      generators fill it in so routing algorithms can translate node ids to
      positions without caring how the network was built.
    """

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._num_nodes = 0
        self._channels: list[Channel] = []
        self._out: list[list[Channel]] = []
        self._in: list[list[Channel]] = []
        self._injection: list[Channel | None] = []
        self._ejection: list[Channel | None] = []
        self._by_label: dict[str, Channel] = {}
        self._frozen = False
        self._fingerprint: str | None = None
        self.coords: dict[int, tuple[int, ...]] = {}
        self.meta: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_nodes(self, count: int) -> range:
        """Add ``count`` nodes; returns the range of new node ids."""
        self._check_mutable()
        if count < 0:
            raise NetworkError(f"cannot add {count} nodes")
        start = self._num_nodes
        self._num_nodes += count
        for _ in range(count):
            self._out.append([])
            self._in.append([])
            self._injection.append(None)
            self._ejection.append(None)
        return range(start, self._num_nodes)

    def add_channel(
        self,
        src: int,
        dst: int,
        *,
        vc: int = 0,
        kind: ChannelKind = ChannelKind.LINK,
        label: str = "",
        **meta: Any,
    ) -> Channel:
        """Create a channel from ``src`` to ``dst`` and return it."""
        self._check_mutable()
        self._check_node(src)
        self._check_node(dst)
        if kind is ChannelKind.LINK and src == dst:
            raise NetworkError(f"link channel may not be a self-loop (node {src})")
        if kind is not ChannelKind.LINK and src != dst:
            raise NetworkError(f"{kind.value} channel must have src == dst")
        ch = Channel(
            cid=len(self._channels),
            src=src,
            dst=dst,
            vc=vc,
            kind=kind,
            label=label,
            meta=meta,
        )
        self._channels.append(ch)
        if kind is ChannelKind.LINK:
            self._out[src].append(ch)
            self._in[dst].append(ch)
        elif kind is ChannelKind.INJECTION:
            if self._injection[src] is not None:
                raise NetworkError(f"node {src} already has an injection channel")
            self._injection[src] = ch
        else:
            if self._ejection[src] is not None:
                raise NetworkError(f"node {src} already has an ejection channel")
            self._ejection[src] = ch
        if label:
            if label in self._by_label:
                raise NetworkError(f"duplicate channel label {label!r}")
            self._by_label[label] = ch
        return ch

    def add_link_channels(self, src: int, dst: int, num_vcs: int, prefix: str = "") -> list[Channel]:
        """Add ``num_vcs`` virtual channels on the physical link ``src -> dst``."""
        base = len(self.channels_between(src, dst))
        return [
            self.add_channel(
                src,
                dst,
                vc=base + v,
                label=f"{prefix}{base + v}" if prefix else "",
            )
            for v in range(num_vcs)
        ]

    def ensure_terminal_channels(self) -> None:
        """Add an injection and an ejection channel to every node lacking one."""
        self._check_mutable()
        for n in range(self._num_nodes):
            if self._injection[n] is None:
                self.add_channel(n, n, kind=ChannelKind.INJECTION, label=f"inj{n}")
            if self._ejection[n] is None:
                self.add_channel(n, n, kind=ChannelKind.EJECTION, label=f"ej{n}")

    def freeze(self, *, require_strongly_connected: bool = True) -> "Network":
        """Finalize the network; it becomes immutable.

        Adds terminal channels if missing and (by default) verifies strong
        connectivity of the link-channel graph, per Definition 1.
        """
        if self._frozen:
            return self
        self.ensure_terminal_channels()
        if require_strongly_connected and self._num_nodes > 1:
            if not self._is_strongly_connected():
                raise NetworkError(
                    f"{self.name}: link channels do not form a strongly "
                    "connected graph (Definition 1 requires it)"
                )
        self._frozen = True
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def nodes(self) -> range:
        return range(self._num_nodes)

    @property
    def channels(self) -> Sequence[Channel]:
        """All channels (link + injection + ejection) in cid order."""
        return self._channels

    @property
    def num_channels(self) -> int:
        return len(self._channels)

    @property
    def link_channels(self) -> list[Channel]:
        """Ordinary network channels: the vertex set of CDG/CWG."""
        return [c for c in self._channels if c.is_link]

    def channel(self, cid: int) -> Channel:
        return self._channels[cid]

    def channel_by_label(self, label: str) -> Channel:
        try:
            return self._by_label[label]
        except KeyError:
            raise NetworkError(f"no channel labelled {label!r}") from None

    def out_channels(self, node: int) -> Sequence[Channel]:
        """Link channels leaving ``node``."""
        self._check_node(node)
        return self._out[node]

    def in_channels(self, node: int) -> Sequence[Channel]:
        """Link channels entering ``node``."""
        self._check_node(node)
        return self._in[node]

    def injection_channel(self, node: int) -> Channel:
        self._check_node(node)
        ch = self._injection[node]
        if ch is None:
            raise NetworkError(f"node {node} has no injection channel (freeze() adds them)")
        return ch

    def ejection_channel(self, node: int) -> Channel:
        self._check_node(node)
        ch = self._ejection[node]
        if ch is None:
            raise NetworkError(f"node {node} has no ejection channel (freeze() adds them)")
        return ch

    def channels_between(self, src: int, dst: int) -> list[Channel]:
        """All virtual channels on the physical link ``src -> dst``."""
        self._check_node(src)
        return [c for c in self._out[src] if c.dst == dst]

    def neighbors_out(self, node: int) -> list[int]:
        """Distinct nodes reachable from ``node`` over one link channel."""
        seen: dict[int, None] = {}
        for c in self._out[node]:
            seen.setdefault(c.dst, None)
        return list(seen)

    def physical_links(self) -> list[tuple[int, int]]:
        """Distinct ``(src, dst)`` pairs that carry at least one link channel."""
        seen: dict[tuple[int, int], None] = {}
        for c in self._channels:
            if c.is_link:
                seen.setdefault(c.endpoints, None)
        return list(seen)

    def max_vcs(self) -> int:
        """Largest number of virtual channels on any physical link."""
        counts: dict[tuple[int, int], int] = {}
        for c in self._channels:
            if c.is_link:
                counts[c.endpoints] = counts.get(c.endpoints, 0) + 1
        return max(counts.values(), default=0)

    def fingerprint(self) -> str:
        """Content-addressed digest of the network's structure.

        Covers nodes, every channel (endpoints, VC index, kind, label,
        generator metadata), coordinates, and network metadata -- any
        observable mutation yields a different fingerprint.  Memoized once
        the network is frozen (it is immutable from then on).
        """
        from ..pipeline.fingerprint import fingerprint_network

        if not self._frozen:
            return fingerprint_network(self)
        if self._fingerprint is None:
            self._fingerprint = fingerprint_network(self)
        return self._fingerprint

    def coord(self, node: int) -> tuple[int, ...]:
        try:
            return self.coords[node]
        except KeyError:
            raise NetworkError(f"network {self.name!r} has no coordinates for node {node}") from None

    def node_at(self, coord: Sequence[int]) -> int:
        """Inverse of :meth:`coord` (linear scan; generators cache their own)."""
        target = tuple(coord)
        for node, c in self.coords.items():
            if c == target:
                return node
        raise NetworkError(f"no node at coordinate {target}")

    def shortest_distances(self) -> list[list[int]]:
        """All-pairs hop distances over link channels (BFS per node)."""
        from collections import deque

        n = self._num_nodes
        dist = [[-1] * n for _ in range(n)]
        for s in range(n):
            row = dist[s]
            row[s] = 0
            dq = deque([s])
            while dq:
                u = dq.popleft()
                du = row[u]
                for c in self._out[u]:
                    v = c.dst
                    if row[v] < 0:
                        row[v] = du + 1
                        dq.append(v)
        return dist

    def __iter__(self) -> Iterator[Channel]:
        return iter(self._channels)

    def __repr__(self) -> str:
        n_link = sum(1 for c in self._channels if c.is_link)
        return f"<Network {self.name!r}: {self._num_nodes} nodes, {n_link} link channels>"

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_mutable(self) -> None:
        if self._frozen:
            raise NetworkError(f"network {self.name!r} is frozen")

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise NetworkError(f"node {node} out of range [0, {self._num_nodes})")

    def _is_strongly_connected(self) -> bool:
        # Forward and reverse BFS from node 0 over link channels.
        for adj in (self._out, self._in):
            seen = [False] * self._num_nodes
            seen[0] = True
            stack = [0]
            while stack:
                u = stack.pop()
                for c in adj[u]:
                    v = c.dst if adj is self._out else c.src
                    if not seen[v]:
                        seen[v] = True
                        stack.append(v)
            if not all(seen):
                return False
        return True


def network_from_edges(
    num_nodes: int,
    edges: Iterable[tuple[int, int] | tuple[int, int, int]],
    *,
    name: str = "custom",
) -> Network:
    """Build an arbitrary network from ``(src, dst)`` or ``(src, dst, num_vcs)`` tuples."""
    net = Network(name)
    net.add_nodes(num_nodes)
    for edge in edges:
        if len(edge) == 2:
            src, dst = edge  # type: ignore[misc]
            nvc = 1
        else:
            src, dst, nvc = edge  # type: ignore[misc]
        net.add_link_channels(src, dst, nvc)
    return net.freeze()
