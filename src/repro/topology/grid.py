"""Shared coordinate machinery for grid-like topologies (mesh, torus, cube).

Nodes of every grid topology are numbered in mixed-radix order: for dims
``(d0, d1, ..., dk-1)`` the node at coordinate ``(x0, ..., xk-1)`` has id
``x0 + d0*(x1 + d1*(x2 + ...))`` -- dimension 0 is the fastest-varying digit.
This matches the convention of the paper's hypercube section, where the bit
for dimension ``i`` is bit ``i`` of the node id.
"""

from __future__ import annotations

from collections.abc import Sequence


def node_id(coord: Sequence[int], dims: Sequence[int]) -> int:
    """Mixed-radix encoding of ``coord`` under radices ``dims``."""
    if len(coord) != len(dims):
        raise ValueError(f"coordinate {tuple(coord)} has wrong arity for dims {tuple(dims)}")
    nid = 0
    for x, d in zip(reversed(coord), reversed(dims)):
        if not 0 <= x < d:
            raise ValueError(f"coordinate {tuple(coord)} out of range for dims {tuple(dims)}")
        nid = nid * d + x
    return nid


def node_coord(nid: int, dims: Sequence[int]) -> tuple[int, ...]:
    """Inverse of :func:`node_id`."""
    coord = []
    for d in dims:
        coord.append(nid % d)
        nid //= d
    if nid:
        raise ValueError("node id out of range")
    return tuple(coord)


def all_coords(dims: Sequence[int]):
    """Yield every coordinate of the grid in node-id order."""
    total = 1
    for d in dims:
        total *= d
    for nid in range(total):
        yield node_coord(nid, dims)


def offset_coord(coord: Sequence[int], dim: int, step: int, dims: Sequence[int], *, wrap: bool) -> tuple[int, ...] | None:
    """Move one hop along ``dim``; returns None if it falls off a mesh edge."""
    x = coord[dim] + step
    d = dims[dim]
    if wrap:
        x %= d
    elif not 0 <= x < d:
        return None
    out = list(coord)
    out[dim] = x
    return tuple(out)
