"""Interconnection-network substrate: channels, networks, and topology builders.

This package implements Definition 1 of the paper (the strongly connected
directed multigraph of processors and channels) plus generators for every
topology the paper touches: n-D meshes, k-ary n-cubes (tori and rings),
binary hypercubes, and the two bespoke example networks of Figures 1 and 4.
"""

from .channel import Channel, ChannelKind
from .examples import FIGURE1_LABELS, build_figure1_network, build_figure4_ring
from .grid import all_coords, node_coord, node_id, offset_coord
from .hypercube import build_hypercube, differing_dimensions, hamming_distance
from .mesh import build_mesh
from .mesh3d import build_mesh3d, build_sparse_pillar_3d, default_pillars
from .network import Network, NetworkError, network_from_edges
from .torus import build_ring, build_torus

__all__ = [
    "Channel",
    "ChannelKind",
    "FIGURE1_LABELS",
    "Network",
    "NetworkError",
    "all_coords",
    "build_figure1_network",
    "build_figure4_ring",
    "build_hypercube",
    "build_mesh",
    "build_mesh3d",
    "build_ring",
    "build_sparse_pillar_3d",
    "build_torus",
    "default_pillars",
    "differing_dimensions",
    "hamming_distance",
    "network_from_edges",
    "node_coord",
    "node_id",
    "offset_coord",
]
