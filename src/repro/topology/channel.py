"""Channels: the fundamental resource of a wormhole network.

A *channel* in this library is always a unidirectional **virtual** channel
(Definition 1 of the paper).  A physical link between two routers carries one
or more virtual channels, each with its own flit buffer; the channel
dependency graph, the channel waiting graph, and the simulator's resource
model all operate on virtual channels, never on physical links directly.

Besides ordinary link channels, a network carries one *injection* channel and
one *ejection* channel per node.  Injection channels model the source queue a
message occupies before it enters the network ("including the injection
channel when the message is at the source" -- Definition 10); ejection
channels model delivery.  Neither kind can participate in a deadlock cycle
(a message never waits on another message's injection queue, and ejection is
always consumed by Assumption 2), but injection channels matter when checking
wait-connectivity at the source.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class ChannelKind(enum.Enum):
    """Role a channel plays in the network."""

    LINK = "link"
    INJECTION = "injection"
    EJECTION = "ejection"


@dataclass(frozen=True)
class Channel:
    """A unidirectional virtual channel.

    Attributes
    ----------
    cid:
        Dense integer id, unique within a :class:`~repro.topology.network.Network`.
        Identity, equality, and hashing use only ``cid`` so channels are cheap
        to place in sets and dicts (the hot paths of every graph algorithm
        here iterate over channel sets).
    src, dst:
        Tail and head nodes: the channel transmits from ``src`` to ``dst``.
        For injection channels ``src == dst`` (the message starts at the
        node); likewise for ejection channels.
    vc:
        Virtual-channel index on its physical link (0-based).  Injection and
        ejection channels use ``vc = 0``.
    kind:
        :class:`ChannelKind` role.
    label:
        Optional human-readable name (e.g. ``"cH0"`` for the paper's
        Figure-1 example, or ``"+x vc1"`` for a mesh channel).
    meta:
        Free-form metadata assigned by topology generators, e.g.
        ``{"dim": 2, "sign": -1}`` for a mesh channel.  Not hashed.
    """

    cid: int
    src: int
    dst: int
    vc: int = 0
    kind: ChannelKind = ChannelKind.LINK
    label: str = ""
    meta: dict[str, Any] = field(default_factory=dict, compare=False, hash=False)

    def __hash__(self) -> int:  # identity is the dense id
        return self.cid

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Channel):
            return self.cid == other.cid
        return NotImplemented

    def __repr__(self) -> str:
        name = self.label or f"c{self.cid}"
        return f"<{name}:{self.src}->{self.dst}/vc{self.vc}>"

    @property
    def is_link(self) -> bool:
        """True for ordinary network channels (the CDG/CWG vertex set)."""
        return self.kind is ChannelKind.LINK

    @property
    def is_injection(self) -> bool:
        return self.kind is ChannelKind.INJECTION

    @property
    def is_ejection(self) -> bool:
        return self.kind is ChannelKind.EJECTION

    @property
    def endpoints(self) -> tuple[int, int]:
        """``(src, dst)`` pair; the physical link this channel rides on."""
        return (self.src, self.dst)
