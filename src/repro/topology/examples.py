"""The paper's bespoke example networks.

Two networks appear in the text with hand-drawn figures:

* **Figure 1** -- Duato's incoherent-routing example: four nodes in a line
  with "high" rightward channels ``cH0, cH1, cH2``, "low" leftward channels
  ``cL1, cL2, cL3``, an extra rightward channel ``cA1`` on link ``n1 -> n2``
  and an extra leftward channel ``cB2`` on link ``n2 -> n1``.

* **Figure 4** -- a ten-node clockwise ring (1D torus) with four virtual
  channels per physical link plus a fifth virtual channel ``cA`` on the link
  ``n8 -> n9``, used to demonstrate a False Resource Cycle under minimal
  routing.

The routing algorithms that ride on these networks live in
:mod:`repro.routing.incoherent` and :mod:`repro.routing.ring_example`; the
builders here only create the channel structure, with stable labels matching
the paper so tests and benchmarks can refer to ``cA1`` etc. directly.
"""

from __future__ import annotations

from .network import Network

#: Labels of the Figure-1 channels, in cid order, for reference in tests.
FIGURE1_LABELS = ("cH0", "cH1", "cH2", "cL1", "cL2", "cL3", "cA1", "cB2")


def build_figure1_network() -> Network:
    """Duato's 4-node incoherent-example network (paper Figure 1).

    Channels (labels match the paper):

    ========  ===========  =======================================
    label     link         role
    ========  ===========  =======================================
    ``cH0``   n0 -> n1     minimal rightward
    ``cH1``   n1 -> n2     minimal rightward
    ``cH2``   n2 -> n3     minimal rightward
    ``cL1``   n1 -> n0     minimal leftward
    ``cL2``   n2 -> n1     minimal leftward
    ``cL3``   n3 -> n2     minimal leftward
    ``cA1``   n1 -> n2     detour channel, dest-``n0`` messages only
    ``cB2``   n2 -> n1     extra leftward, dest-``n0`` messages only
    ========  ===========  =======================================
    """
    net = Network("figure1")
    net.add_nodes(4)
    net.meta.update(topology="figure1")
    for n in range(4):
        net.coords[n] = (n,)
    net.add_channel(0, 1, vc=0, label="cH0", dim=0, sign=+1)
    net.add_channel(1, 2, vc=0, label="cH1", dim=0, sign=+1)
    net.add_channel(2, 3, vc=0, label="cH2", dim=0, sign=+1)
    net.add_channel(1, 0, vc=0, label="cL1", dim=0, sign=-1)
    net.add_channel(2, 1, vc=0, label="cL2", dim=0, sign=-1)
    net.add_channel(3, 2, vc=0, label="cL3", dim=0, sign=-1)
    net.add_channel(1, 2, vc=1, label="cA1", dim=0, sign=+1, detour=True)
    net.add_channel(2, 1, vc=1, label="cB2", dim=0, sign=-1, extra=True)
    return net.freeze()


def build_figure4_ring(size: int = 10, *, num_vcs: int = 4, extra_link: tuple[int, int] = (8, 9)) -> Network:
    """The Figure-4 clockwise ring: ``num_vcs`` VCs per link plus one extra.

    Every physical link ``i -> (i+1) % size`` carries virtual channels
    ``0 .. num_vcs-1``; the link named by ``extra_link`` carries one more,
    labelled ``cA``.  Metadata marks the wrap-around link (``size-1 -> 0``)
    so level-switching routing schemes can detect the dateline.
    """
    if size < 3:
        raise ValueError("figure-4 ring needs at least 3 nodes")
    if extra_link[1] != (extra_link[0] + 1) % size:
        raise ValueError(f"extra_link {extra_link} is not a clockwise ring link")
    net = Network(f"figure4-ring({size})")
    net.add_nodes(size)
    net.meta.update(topology="figure4", dims=(size,), num_vcs=num_vcs, extra_link=extra_link)
    for src in range(size):
        net.coords[src] = (src,)
        dst = (src + 1) % size
        wrap = src == size - 1
        for vc in range(num_vcs):
            net.add_channel(
                src, dst, vc=vc,
                label=f"c{vc},{src}->{dst}",
                dim=0, sign=+1, wrap=wrap,
            )
        if (src, dst) == tuple(extra_link):
            net.add_channel(
                src, dst, vc=num_vcs,
                label="cA",
                dim=0, sign=+1, wrap=wrap, extra=True,
            )
    return net.freeze()
