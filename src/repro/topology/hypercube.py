"""Binary hypercube topologies (2-ary n-cubes).

Node ids are the natural bit strings of Section 9.3: bit ``i`` of the node id
is the coordinate in dimension ``i``.  A message routes "in the positive
direction of dimension i" when its source bit is 0 and destination bit is 1,
matching the paper's convention.

Channel labels follow the paper's Figure-6 notation ``c{vc+1},{dim}{src}``
is unwieldy for general n, so we use ``c{vc+1},{+|-}{dim}@{src}`` like the
mesh/torus builders; metadata carries ``dim`` and ``sign`` (+1 when the
channel flips a 0 bit to 1).
"""

from __future__ import annotations

from .network import Network


def build_hypercube(dimension: int, *, num_vcs: int = 1, name: str | None = None) -> Network:
    """Build an n-dimensional binary hypercube.

    Every physical link carries ``num_vcs`` virtual channels.  The Enhanced
    Fully Adaptive algorithm of Section 9.3 uses ``num_vcs=2``.
    """
    if dimension < 1:
        raise ValueError("hypercube dimension must be >= 1")
    if num_vcs < 1:
        raise ValueError("num_vcs must be >= 1")
    net = Network(name or f"hypercube({dimension})")
    total = 1 << dimension
    net.add_nodes(total)
    net.meta.update(topology="hypercube", dimension=dimension, dims=(2,) * dimension, num_vcs=num_vcs)
    for src in range(total):
        net.coords[src] = tuple((src >> i) & 1 for i in range(dimension))
        for dim in range(dimension):
            dst = src ^ (1 << dim)
            sign = +1 if not (src >> dim) & 1 else -1
            for vc in range(num_vcs):
                net.add_channel(
                    src,
                    dst,
                    vc=vc,
                    label=f"c{vc + 1},{'+' if sign > 0 else '-'}{dim}@{src}",
                    dim=dim,
                    sign=sign,
                )
    return net.freeze()


def hamming_distance(a: int, b: int) -> int:
    """Hop distance between hypercube nodes ``a`` and ``b``."""
    return (a ^ b).bit_count()


def differing_dimensions(a: int, b: int) -> list[int]:
    """Dimensions in which ``a`` and ``b`` differ, ascending."""
    x = a ^ b
    dims = []
    d = 0
    while x:
        if x & 1:
            dims.append(d)
        x >>= 1
        d += 1
    return dims
