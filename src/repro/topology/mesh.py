"""n-dimensional mesh topologies.

A mesh has no wrap-around channels; each physical link carries ``num_vcs``
virtual channels in each direction.  Channel metadata records the dimension,
direction sign, and VC index so routing algorithms can express rules like
"the positive channel of the lowest dimension" without re-deriving geometry.
"""

from __future__ import annotations

from collections.abc import Sequence

from . import grid
from .network import Network


def build_mesh(dims: Sequence[int], *, num_vcs: int = 1, name: str | None = None) -> Network:
    """Build an n-D mesh with ``num_vcs`` virtual channels per direction.

    Parameters
    ----------
    dims:
        Side lengths, e.g. ``(4, 4)`` for a 4x4 2D mesh.  Every entry must be
        at least 1; dimensions of length 1 are allowed (and contribute no
        channels).
    num_vcs:
        Virtual channels per unidirectional physical link.

    Channel metadata: ``dim`` (dimension index), ``sign`` (+1 / -1 travel
    direction), and the channel's ``vc`` field is its VC index on the link.
    Labels follow the paper's hypercube convention generalized to meshes:
    ``c{vc+1},{sign}{dim}@{src}`` e.g. ``c1,+0@5``.
    """
    dims = tuple(int(d) for d in dims)
    if not dims or any(d < 1 for d in dims):
        raise ValueError(f"invalid mesh dims {dims}")
    if num_vcs < 1:
        raise ValueError("num_vcs must be >= 1")
    net = Network(name or f"mesh{dims}")
    total = 1
    for d in dims:
        total *= d
    net.add_nodes(total)
    net.meta.update(topology="mesh", dims=dims, num_vcs=num_vcs, wrap=False)
    for coord in grid.all_coords(dims):
        src = grid.node_id(coord, dims)
        net.coords[src] = coord
        for dim in range(len(dims)):
            for sign in (+1, -1):
                nbr = grid.offset_coord(coord, dim, sign, dims, wrap=False)
                if nbr is None:
                    continue
                dst = grid.node_id(nbr, dims)
                for vc in range(num_vcs):
                    net.add_channel(
                        src,
                        dst,
                        vc=vc,
                        label=f"c{vc + 1},{'+' if sign > 0 else '-'}{dim}@{src}",
                        dim=dim,
                        sign=sign,
                    )
    return net.freeze()
