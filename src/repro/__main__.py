"""Command-line interface: ``python -m repro``.

Subcommands
-----------
``verify``        run the deadlock-freedom verifiers on a cataloged algorithm;
``verify-batch``  sweep many algorithms concurrently through the cached pipeline;
``lint``          static-analyze routing relations: rule pack, triage screens,
                  text/JSON/SARIF output with baseline suppression;
``catalog``       list the routing algorithms and their certified properties;
``scenarios``     list the scenario registry (topology, VCs, selection policy,
                  certifying theorem, pinned verdict) as text or JSON;
``dot``           emit the CWG or CDG of an algorithm as Graphviz DOT;
``graph-stats``   print the kernel summary (SCCs, acyclicity, fingerprint)
                  of an algorithm's CWG, CDG, or ECDG;
``simulate``      run the wormhole simulator and print a latency/throughput row;
``sim-sweep``     fan a simulation grid across a process pool;
``profile``       cProfile a named bench scenario and rank its hotspots;
``fuzz``          differential-fuzz the verifier stack (or replay the corpus);
``exists``        decide whether *any* deadlock-free routing relation exists on
                  a topology (Mendlovic--Matias), with witness synthesis and
                  incremental link-flap re-decision;
``reverify``      apply deltas (link faults/repairs, table edits, VC adds) to an
                  algorithm and incrementally re-verify after each one;
``serve``         boot the sharded re-verification service and run a burst of
                  link-flap jobs against it (the CI smoke mode);
``regen-golden``  rebuild the simulator golden-digest fixture (needs ``--force``).

Examples::

    python -m repro catalog
    python -m repro verify --algorithm highest-positive-last --topology mesh --dims 4,4
    python -m repro verify-batch --jobs 4 --cache-dir .repro-cache --format json
    python -m repro lint --format sarif --baseline lint-baseline.json --output lint.sarif
    python -m repro dot --algorithm incoherent-example --topology figure1 --graph cwg
    python -m repro simulate --algorithm e-cube-mesh --topology mesh --dims 8,8 \
        --rate 0.2 --cycles 3000
    python -m repro sim-sweep --algorithms e-cube-mesh,highest-positive-last \
        --patterns uniform,transpose --rates 0.1,0.2,0.3 --seeds 3,5 --jobs 4
    python -m repro fuzz --seed 42 --cases 200 --corpus-dir corpus
    python -m repro fuzz --replay-corpus corpus
    python -m repro exists --all
    python -m repro exists --scenario e-cube --witness --format json
    python -m repro exists --topology torus --dims 4,4 --delta down:0>1@0 \
        --delta up:0>1@0 --compare-full
    python -m repro reverify --algorithm west-first \
        --delta down:0>1@0 --delta up:0>1@0 --compare-full
    python -m repro serve --algorithms all --events 40 --workers 2 \
        --sample 0.2 --expect-hit-rate 0.3
    python -m repro regen-golden --force
"""

from __future__ import annotations

import argparse
import sys

from .export import (
    batch_table,
    batch_to_csv,
    batch_to_json,
    graph_stats_block,
    to_dot,
    verdict_block,
)
from .routing import CATALOG, make


def _parse_dims(text: str, flag: str) -> tuple[int, ...]:
    try:
        return tuple(int(x) for x in text.split(","))
    except ValueError:
        raise SystemExit(f"{flag} expects comma-separated integers, got {text!r}") from None


def _build_network(args) -> object:
    from .pipeline import build_topology

    dims = _parse_dims(args.dims, "--dims") if args.dims else None
    try:
        return build_topology(args.topology, dims, args.vcs)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def _topology_spec(args):
    """Resolve the common --topology/--dims/--vcs flags to a TopologySpec."""
    from .scenario import TopologySpec

    topo = args.topology
    if isinstance(topo, str):
        topo = TopologySpec.parse(topo)
    dims = _parse_dims(args.dims, "--dims") if args.dims else None
    return topo.with_dims(dims).with_vcs(args.vcs)


def _default_vcs(name: str) -> int:
    return CATALOG[name].min_vcs if name in CATALOG else 1


def cmd_catalog(args) -> int:
    width = max(len(n) for n in CATALOG)
    tw = max(len("topo"), *(len(e.family) for e in CATALOG.values()))
    print(f"{'name'.ljust(width)}  {'topo'.ljust(tw)}  vcs  adaptivity   safe  certified by")
    for name in sorted(CATALOG):
        e = CATALOG[name]
        print(
            f"{name.ljust(width)}  {e.family.ljust(tw)}  {e.min_vcs:<3}  "
            f"{e.adaptivity:<11}  {'yes' if e.deadlock_free else 'NO ':<4}  {e.certified_by}"
        )
    return 0


def cmd_scenarios(args) -> int:
    """List the scenario registry: the single source of reproducible setups."""
    from .scenario import all_specs

    specs = list(all_specs())
    if args.format == "json":
        import json

        print(json.dumps([s.to_json() for s in specs], indent=2))
        return 0
    width = max(len(s.name) for s in specs)
    tw = max(len("topology"), *(len(s.topology.describe()) for s in specs))
    print(f"{'name'.ljust(width)}  {'topology'.ljust(tw)}  vcs  "
          f"{'selection'.ljust(12)}  {'adaptivity'.ljust(11)}  safe  certified by")
    for s in specs:
        print(
            f"{s.name.ljust(width)}  {s.topology.describe().ljust(tw)}  {s.min_vcs:<3}  "
            f"{s.selection:<12}  {s.adaptivity:<11}  "
            f"{'yes' if s.deadlock_free else 'NO ':<4}  {s.certified_by}"
        )
    return 0


def cmd_verify(args) -> int:
    from .verify import dally_seitz, search_escape, verify

    if args.vcs is None:
        args.vcs = _default_vcs(args.algorithm)
    net = _build_network(args)
    ra = make(args.algorithm, net)
    print(f"network: {net}")
    if args.all_conditions:
        print(dally_seitz(ra))
        print(search_escape(ra))
    verdict = verify(ra)
    print(verdict_block(verdict))
    return 0 if verdict.deadlock_free else 1


def cmd_verify_batch(args) -> int:
    from .pipeline import DEFAULT_CONDITIONS, BatchVerifier, catalog_specs

    names = None
    if args.algorithms and args.algorithms != "all":
        names = [n.strip() for n in args.algorithms.split(",") if n.strip()]
        unknown = [n for n in names if n not in CATALOG]
        if unknown:
            raise SystemExit(f"unknown algorithms {unknown}; see `python -m repro catalog`")
    conditions = tuple(
        c.strip() for c in (args.conditions or ",".join(DEFAULT_CONDITIONS)).split(",")
        if c.strip()
    )
    specs = catalog_specs(
        names,
        mesh_dims=_parse_dims(args.mesh_dims, "--mesh-dims"),
        torus_dims=_parse_dims(args.torus_dims, "--torus-dims"),
        hypercube_dim=args.hypercube_dim,
        conditions=conditions,
        triage=not args.no_triage,
    )
    verifier = BatchVerifier(
        workers=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
    )
    report = verifier.run(specs)
    rendered = {
        "table": batch_table,
        "json": batch_to_json,
        "csv": batch_to_csv,
    }[args.format](report)
    if args.output:
        with open(args.output, "w") as f:
            f.write(rendered if rendered.endswith("\n") else rendered + "\n")
        print(f"wrote {args.format} report for {len(report.jobs)} jobs to {args.output}")
    else:
        print(rendered)
    return 1 if report.errors else 0


def _lint_split(text: str | None) -> list[str]:
    return [t.strip() for t in (text or "").split(",") if t.strip()]


def _lint_case_target(path, config, dims_args):
    """Analyze one case file (a fuzz TableCase or a corpus entry)."""
    import json
    from pathlib import Path

    from .analyze import TargetReport, analyze

    p = Path(path)
    name = p.stem
    try:
        doc = json.loads(p.read_text())
        if "table" in doc and "format" in doc:  # a shrunk corpus reproducer
            from .fuzz.corpus import CorpusEntry

            case = CorpusEntry.from_json(doc).table
        else:  # a bare TableCase
            from .fuzz.table import TableCase

            case = TableCase.from_json(doc)
        ra = case.build()
    except Exception as exc:
        return TargetReport(target=name, network="?", wait_policy="?",
                            error=f"{type(exc).__name__}: {exc}")
    return analyze(ra, config=config, target=name)


def cmd_lint(args) -> int:
    from pathlib import Path

    from .analyze import (
        RENDERERS,
        AnalysisReport,
        RuleConfig,
        Severity,
        analyze,
        apply_baseline,
        load_baseline,
        write_baseline,
    )
    from .pipeline import build_topology

    try:
        config = RuleConfig.from_tokens(
            disable=_lint_split(args.disable), select=_lint_split(args.select)
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None

    report = AnalysisReport()
    if args.case:
        for path in args.case:
            report.add(_lint_case_target(path, config, args))
    elif args.corpus:
        files = sorted(Path(args.corpus).glob("*.json"))
        if not files:
            raise SystemExit(f"no .json case files under {args.corpus}")
        for path in files:
            report.add(_lint_case_target(path, config, args))
    else:
        names = _lint_split(args.algorithms) or sorted(CATALOG)
        if args.algorithms in (None, "", "all"):
            names = sorted(CATALOG)
        unknown = [n for n in names if n not in CATALOG]
        if unknown:
            raise SystemExit(f"unknown algorithms {unknown}; see `python -m repro catalog`")
        family_dims = {
            "mesh": _parse_dims(args.mesh_dims, "--mesh-dims"),
            "torus": _parse_dims(args.torus_dims, "--torus-dims"),
            "hypercube": args.hypercube_dim,
        }
        from .analyze import TargetReport

        for name in names:
            entry = CATALOG[name]
            try:
                net = build_topology(entry.topology_for(family_dims))
                ra = make(name, net)
            except Exception as exc:
                report.add(TargetReport(target=name, network="?", wait_policy="?",
                                        error=f"{type(exc).__name__}: {exc}"))
                continue
            report.add(analyze(ra, config=config, target=name))
    report.finalize()

    if args.write_baseline:
        n = write_baseline(report, Path(args.write_baseline))
        print(f"wrote {n} suppressions to {args.write_baseline}")
        return 0
    if args.baseline:
        try:
            suppressions = load_baseline(Path(args.baseline))
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot load baseline: {exc}") from None
        apply_baseline(report, suppressions)

    rendered = RENDERERS[args.format](report)
    if args.output:
        with open(args.output, "w") as f:
            f.write(rendered)
        print(f"wrote {args.format} report for {len(report.targets)} targets to {args.output}")
    else:
        print(rendered, end="")

    if any(t.error for t in report.targets):
        return 2
    if args.fail_on == "never":
        return 0
    threshold = Severity.parse(args.fail_on)
    worst = report.max_severity
    return 1 if worst is not None and worst >= threshold else 0


def cmd_dot(args) -> int:
    if args.vcs is None:
        args.vcs = _default_vcs(args.algorithm)
    net = _build_network(args)
    ra = make(args.algorithm, net)
    g = _build_channel_graph(ra, args.graph)
    print(to_dot(g, title=f"{g.kind} of {ra.name} on {net.name}"))
    return 0


def _build_channel_graph(ra, kind: str):
    if kind == "cwg":
        from .core import ChannelWaitingGraph

        return ChannelWaitingGraph(ra)
    if kind == "cdg":
        from .deps import ChannelDependencyGraph

        return ChannelDependencyGraph(ra)
    from .deps import ExtendedChannelDependencyGraph, escape_by_vc

    return ExtendedChannelDependencyGraph(ra, escape_by_vc(ra))


def cmd_graph_stats(args) -> int:
    if args.vcs is None:
        args.vcs = _default_vcs(args.algorithm)
    net = _build_network(args)
    ra = make(args.algorithm, net)
    g = _build_channel_graph(ra, args.graph)
    print(f"{args.graph.upper()} of {ra.name} on {net.name}")
    print(graph_stats_block(g))
    return 0


def cmd_simulate(args) -> int:
    from .sim import BernoulliTraffic, SimConfig, WormholeSimulator

    if args.vcs is None:
        args.vcs = _default_vcs(args.algorithm)
    net = _build_network(args)
    ra = make(args.algorithm, net)
    sim = WormholeSimulator(
        ra,
        BernoulliTraffic(net, rate=args.rate, pattern=args.pattern,
                         length=args.length, stop_at=args.cycles),
        SimConfig(seed=args.seed),
    )
    sim.run(args.cycles)
    if sim.deadlock is not None:
        print(sim.deadlock.describe())
        return 2
    sim.drain()
    s = sim.stats.summary(cycles=sim.cycle, num_nodes=net.num_nodes,
                          warmup=args.cycles // 5)
    print(f"{ra.name} on {net.name} @ rate {args.rate} ({args.pattern}): {s.row()}")
    return 0


def cmd_sim_sweep(args) -> int:
    from .sim import SweepRunner, grid_points, sweep_table, sweep_to_json

    names = [n.strip() for n in args.algorithms.split(",") if n.strip()]
    unknown = [n for n in names if n not in CATALOG]
    if unknown:
        raise SystemExit(f"unknown algorithms {unknown}; see `python -m repro catalog`")
    try:
        rates = tuple(float(x) for x in args.rates.split(","))
        seeds = tuple(int(x) for x in args.seeds.split(","))
    except ValueError as exc:
        raise SystemExit(f"bad --rates/--seeds: {exc}") from None
    points = grid_points(
        names,
        patterns=tuple(p.strip() for p in args.patterns.split(",") if p.strip()),
        rates=rates,
        seeds=seeds,
        cycles=args.cycles,
        length=args.length,
        mesh_dims=_parse_dims(args.mesh_dims, "--mesh-dims"),
        torus_dims=_parse_dims(args.torus_dims, "--torus-dims"),
        hypercube_dim=args.hypercube_dim,
    )
    report = SweepRunner(workers=args.jobs).run(points)
    rendered = {"table": sweep_table, "json": sweep_to_json}[args.format](report)
    if args.output:
        with open(args.output, "w") as f:
            f.write(rendered if rendered.endswith("\n") else rendered + "\n")
        print(f"wrote {args.format} report for {len(report.points)} points to {args.output}")
    else:
        print(rendered)
    return 1 if report.errors else 0


def cmd_profile(args) -> int:
    from .profiling import SCENARIOS, run_profile

    if args.list:
        width = max(len(n) for n in SCENARIOS)
        for name in sorted(SCENARIOS):
            print(f"{name.ljust(width)}  {SCENARIOS[name].description}")
        return 0
    if args.scenario is None:
        raise SystemExit("profile: a scenario is required (or use --list)")
    try:
        report = run_profile(args.scenario, top=args.top, sort=args.sort)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    rendered = report.to_json() if args.format == "json" else report.to_text()
    if args.output:
        with open(args.output, "w") as f:
            f.write(rendered if rendered.endswith("\n") else rendered + "\n")
        print(f"wrote {args.format} profile of {args.scenario} to {args.output}")
    else:
        print(rendered)
    return 0


def cmd_fuzz(args) -> int:
    from .fuzz import (
        DEFAULT_FAMILIES,
        FAMILIES,
        FuzzConfig,
        fuzz_table,
        replay_corpus,
        replay_table,
        run_campaign,
    )

    if args.replay_corpus is not None:
        report = replay_corpus(args.replay_corpus)
        print(replay_table(report))
        return 0 if report.ok else 1

    families = DEFAULT_FAMILIES
    if args.families:
        families = tuple(f.strip() for f in args.families.split(",") if f.strip())
        unknown = [f for f in families if f not in FAMILIES]
        if unknown:
            raise SystemExit(f"unknown families {unknown}; known: {sorted(FAMILIES)}")
    config = FuzzConfig(
        seed=args.seed,
        max_cases=args.cases if args.cases > 0 else None,
        max_seconds=args.seconds,
        families=families,
        stack=args.stack,
        workers=args.jobs,
        corpus_dir=args.corpus_dir,
        shrink_budget=args.shrink_budget,
    )
    try:
        report = run_campaign(config)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    print(fuzz_table(report))
    return 0 if report.clean else 1


def _exists_row(name: str, net, *, witness: bool) -> tuple:
    """Decide existence on one network; returns (verdict, json-able row)."""
    import time

    from .verify import decide_existence, synthesize_witness

    t0 = time.perf_counter()
    verdict = decide_existence(net)
    seconds = time.perf_counter() - t0
    row = {
        "name": name,
        "network": net.name,
        "num_nodes": net.num_nodes,
        "link_channels": len(net.link_channels),
        "exists": verdict.exists,
        "authoritative": verdict.authoritative,
        "method": verdict.method,
        "seconds": round(seconds, 6),
    }
    if witness and verdict.exists and verdict.schedule is not None:
        w = synthesize_witness(net, verdict.schedule)
        row["witness"] = w.kind
        row["witness_relation"] = w.algorithm.name
    if verdict.exists is False and verdict.obstruction is not None:
        row["obstruction"] = verdict.obstruction.to_json()
    return verdict, row


def cmd_exists(args) -> int:
    import json

    from .scenario import all_specs, get as get_scenario

    if args.all_scenarios:
        rows = []
        for spec in all_specs():
            net = spec.instantiate().network
            _, row = _exists_row(spec.name, net, witness=args.witness)
            rows.append(row)
        if args.format == "json":
            print(json.dumps(rows, indent=2))
            return 0
        width = max(len(r["name"]) for r in rows)
        nw = max(len("network"), *(len(r["network"]) for r in rows))
        print(f"{'scenario'.ljust(width)}  {'network'.ljust(nw)}  chans  "
              f"exists  method          ms")
        for r in rows:
            exists = {True: "yes", False: "NO ", None: "?  "}[r["exists"]]
            extra = f"  [{r['witness']}]" if "witness" in r else ""
            print(f"{r['name'].ljust(width)}  {r['network'].ljust(nw)}  "
                  f"{r['link_channels']:<5}  {exists:<6}  {r['method']:<14}  "
                  f"{r['seconds'] * 1000:6.1f}{extra}")
        return 0

    if args.scenario:
        try:
            net = get_scenario(args.scenario).instantiate().network
        except KeyError:
            raise SystemExit(
                f"unknown scenario {args.scenario!r}; see `python -m repro scenarios`"
            ) from None
        name = args.scenario
    elif args.topology:
        net = _build_network(args)
        name = net.name
    else:
        raise SystemExit("exists: need --scenario, --topology, or --all")

    verdict, row = _exists_row(name, net, witness=args.witness)

    if args.delta:
        from .incremental import ExistenceSession, parse_delta

        try:
            deltas = [parse_delta(text) for text in args.delta]
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        session = ExistenceSession(net)
        decision = session.decide()
        steps = [{"delta": None, **row}]
        print(f"baseline: {decision.describe()}")
        mismatches = 0
        for delta in deltas:
            try:
                decision = session.apply(delta)
            except ValueError as exc:
                raise SystemExit(f"cannot apply {delta}: {exc}") from None
            print(f"{delta}: {decision.describe()}")
            if args.compare_full:
                full = session.full_decide()
                same = full.digest == decision.digest
                mismatches += not same
                print(f"  full re-decision: digest "
                      f"{'matches' if same else 'MISMATCH'} "
                      f"({full.seconds:.3f}s cold vs "
                      f"{decision.seconds:.3f}s incremental)")
        if mismatches:
            print(f"{mismatches} incremental verdict(s) diverged from cold re-decisions")
            return 2
        verdict = decision.verdict

    if args.format == "json":
        print(json.dumps(row, indent=2))
    elif not args.delta:
        print(verdict.describe())
        if "witness" in row:
            print(f"witness: {row['witness']} relation "
                  f"{row['witness_relation']} (theorem-certified)")
    if verdict.exists is True:
        return 0
    return 1 if verdict.exists is False else 2


def cmd_reverify(args) -> int:
    from .incremental import IncrementalSession, parse_delta
    from .pipeline import JobSpec

    if args.vcs is None:
        args.vcs = _default_vcs(args.algorithm)
    spec = JobSpec(algorithm=args.algorithm, topology=_topology_spec(args))
    try:
        deltas = [parse_delta(text) for text in (args.delta or [])]
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    try:
        session = IncrementalSession(spec=spec, triage=not args.no_triage)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    result = session.baseline()
    print(result.describe())
    mismatches = 0
    for delta in deltas:
        try:
            result = session.reverify(delta)
        except ValueError as exc:
            raise SystemExit(f"cannot apply {delta}: {exc}") from None
        print(result.describe())
        if args.compare_full:
            full = session.full_check()
            same = full.digest == result.digest
            mismatches += not same
            print(f"  full rebuild: digest {'matches' if same else 'MISMATCH'} "
                  f"({full.seconds:.3f}s cold vs {result.seconds:.3f}s incremental)")
    if mismatches:
        print(f"{mismatches} incremental verdict(s) diverged from full rebuilds")
        return 1
    # like cmd_verify: the authoritative theorem verdict decides the exit
    # code (sufficient-only conditions cannot refute adaptive algorithms)
    final = result.verdicts.get("theorem")
    free = final.deadlock_free if final is not None else result.deadlock_free
    return 0 if free else 1


def cmd_serve(args) -> int:
    import random

    from .incremental import LinkDown, LinkUp
    from .pipeline import build_topology, catalog_specs
    from .serve import ReverifyJob, VerificationService

    names = sorted(CATALOG)
    if args.algorithms and args.algorithms != "all":
        names = [n.strip() for n in args.algorithms.split(",") if n.strip()]
        unknown = [n for n in names if n not in CATALOG]
        if unknown:
            raise SystemExit(f"unknown algorithms {unknown}; see `python -m repro catalog`")
    specs = catalog_specs(
        names,
        mesh_dims=_parse_dims(args.mesh_dims, "--mesh-dims"),
        torus_dims=_parse_dims(args.torus_dims, "--torus-dims"),
        hypercube_dim=args.hypercube_dim,
    )
    # A deterministic link-flap event stream: each target flaps one randomly
    # chosen link channel, so repaired states revisit known fingerprints and
    # the content-addressed cache must show hits.
    rng = random.Random(args.seed)
    flap_link: dict[str, tuple[int, int, int]] = {}
    is_down: dict[str, bool] = {}
    for spec in specs:
        net = build_topology(spec.topology, spec.dims, spec.vcs)
        c = rng.choice(net.link_channels)
        flap_link[spec.algorithm] = (c.src, c.dst, c.vc)
        is_down[spec.algorithm] = False
    jobs = []
    for job_id in range(args.events):
        target = rng.choice(names)
        src, dst, vc = flap_link[target]
        delta = LinkUp(src, dst, vc) if is_down[target] else LinkDown(src, dst, vc)
        is_down[target] = not is_down[target]
        jobs.append(ReverifyJob(job_id, target, delta))
    service = VerificationService(
        specs, workers=args.workers, verify_sample=args.sample,
    )
    report = service.run_burst(jobs)
    print(report.describe())
    lat = report.metrics.get("observations", {}).get("serve_latency_seconds")
    if lat:
        print(f"  latency mean={lat['mean']:.4f}s min={lat['min']:.4f}s "
              f"max={lat['max']:.4f}s over {int(lat['count'])} jobs")
    ok = report.ok(min_hit_rate=args.expect_hit_rate)
    if not ok and report.hit_rate < args.expect_hit_rate:
        print(f"  hit rate {report.hit_rate:.3f} below required "
              f"{args.expect_hit_rate:.3f}")
    return 0 if ok else 1


def cmd_regen_golden(args) -> int:
    import importlib
    import json
    from pathlib import Path

    tests_dir = Path(__file__).resolve().parents[2] / "tests"
    if not (tests_dir / "golden_matrix.py").is_file():
        raise SystemExit(f"golden matrix module not found under {tests_dir}")
    sys.path.insert(0, str(tests_dir))
    try:
        gm = importlib.import_module("golden_matrix")
    finally:
        sys.path.remove(str(tests_dir))

    fixture = Path(args.fixture) if args.fixture else gm.FIXTURE
    only = None
    if args.only:
        only = [c.strip() for c in args.only.split(",") if c.strip()]
        unknown = [c for c in only if c not in gm.CASES]
        if unknown:
            raise SystemExit(f"unknown golden cases {unknown}; known: {sorted(gm.CASES)}")

    if args.check:
        recorded = gm.load_fixture()
        bad = 0
        for cid in only or sorted(gm.CASES):
            got = gm.run_case(cid)
            ok = recorded.get(cid) == got
            bad += not ok
            print(f"{cid:24} {'ok' if ok else 'MISMATCH'}")
        return 1 if bad else 0

    if not args.force:
        targets = only or sorted(gm.CASES)
        raise SystemExit(
            f"refusing to regenerate {len(targets)} golden digest(s) in {fixture}.\n"
            "Golden digests pin simulator behavior; rewrite them only when a\n"
            "change is *intended* to alter it.  Re-run with --force to proceed,\n"
            "or with --check to compare without writing."
        )

    recorded = {}
    if fixture.is_file():
        with open(fixture) as f:
            recorded = json.load(f)
    digests = dict(recorded)
    for cid in only or sorted(gm.CASES):
        digests[cid] = gm.run_case(cid)
        changed = recorded.get(cid) != digests[cid]
        print(f"{cid:24} {digests[cid]}{'  (changed)' if changed else ''}")
    fixture.parent.mkdir(parents=True, exist_ok=True)
    with open(fixture, "w") as f:
        json.dump(digests, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {len(digests)} digests to {fixture}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    from .scenario import family_names

    def common(p):
        p.add_argument("--algorithm", required=True, choices=sorted(CATALOG))
        p.add_argument("--topology", default=None, choices=list(family_names()),
                       help="topology family (default: the scenario's canonical one)")
        p.add_argument("--dims", default=None, help="comma-separated, e.g. 4,4 (hypercube: one number)")
        p.add_argument("--vcs", type=int, default=None, help="virtual channels per link")

    sub.add_parser("catalog", help="list routing algorithms")

    pc = sub.add_parser(
        "scenarios",
        help="list the scenario registry (topology, VCs, selection, verdict)",
    )
    pc.add_argument("--format", default="text", choices=["text", "json"])

    pv = sub.add_parser("verify", help="run the deadlock-freedom verifiers")
    common(pv)
    pv.add_argument("--all-conditions", action="store_true",
                    help="also run Dally-Seitz and Duato's condition")

    pb = sub.add_parser(
        "verify-batch",
        help="verify many cataloged algorithms concurrently with caching",
    )
    pb.add_argument("--algorithms", default="all",
                    help="comma-separated catalog names (default: the whole catalog)")
    pb.add_argument("--conditions", default=None,
                    help="comma-separated subset of theorem,duato,dally-seitz")
    pb.add_argument("--jobs", type=int, default=0,
                    help="worker processes (0/1 = deterministic in-process)")
    pb.add_argument("--mesh-dims", default="4,4", help="dims for mesh jobs")
    pb.add_argument("--torus-dims", default="4,4", help="dims for torus jobs")
    pb.add_argument("--hypercube-dim", type=int, default=3, help="dimension for hypercube jobs")
    pb.add_argument("--cache-dir", default=None,
                    help="shared on-disk cache directory (warm re-runs are near-free)")
    pb.add_argument("--no-cache", action="store_true", help="disable all caching")
    pb.add_argument("--no-triage", action="store_true",
                    help="skip the static triage screens; always run the full theorem check")
    pb.add_argument("--format", default="table", choices=["table", "json", "csv"])
    pb.add_argument("--output", default=None, help="write the report to a file")

    pl = sub.add_parser(
        "lint",
        help="static-analyze routing relations (rule pack + triage screens)",
    )
    pl.add_argument("--algorithms", default="all",
                    help="comma-separated catalog names (default: the whole catalog)")
    pl.add_argument("--case", action="append", default=None, metavar="FILE",
                    help="analyze a fuzz TableCase / corpus-entry JSON file (repeatable)")
    pl.add_argument("--corpus", default=None, metavar="DIR",
                    help="analyze every .json case under a corpus directory")
    pl.add_argument("--mesh-dims", default="4,4", help="dims for mesh algorithms")
    pl.add_argument("--torus-dims", default="4,4", help="dims for torus algorithms")
    pl.add_argument("--hypercube-dim", type=int, default=3,
                    help="dimension for hypercube algorithms")
    pl.add_argument("--format", default="text", choices=["text", "json", "sarif"])
    pl.add_argument("--output", default=None, help="write the report to a file")
    pl.add_argument("--baseline", default=None, metavar="FILE",
                    help="suppress diagnostics whose fingerprints are in this baseline")
    pl.add_argument("--write-baseline", default=None, metavar="FILE",
                    help="write a baseline accepting every current finding, then exit")
    pl.add_argument("--disable", default=None,
                    help="comma-separated rule ids/names to disable")
    pl.add_argument("--select", default=None,
                    help="comma-separated rule ids/names to run exclusively")
    pl.add_argument("--fail-on", default="error",
                    choices=["error", "warning", "info", "never"],
                    help="lowest severity that fails the run (default: error)")

    pd = sub.add_parser("dot", help="emit a channel graph as Graphviz DOT")
    common(pd)
    pd.add_argument("--graph", default="cwg", choices=["cwg", "cdg", "ecdg"])

    pg = sub.add_parser(
        "graph-stats",
        help="print the dependency-graph kernel summary (SCCs, acyclicity, fingerprint)",
    )
    common(pg)
    pg.add_argument("--graph", default="cwg", choices=["cwg", "cdg", "ecdg"])

    ps = sub.add_parser("simulate", help="run the wormhole simulator")
    common(ps)
    ps.add_argument("--rate", type=float, default=0.2)
    ps.add_argument("--pattern", default="uniform")
    ps.add_argument("--length", type=int, default=8)
    ps.add_argument("--cycles", type=int, default=3000)
    ps.add_argument("--seed", type=int, default=1)

    pw = sub.add_parser(
        "sim-sweep",
        help="run a simulation grid (algorithm x pattern x load x seed) in parallel",
    )
    pw.add_argument("--algorithms", default="e-cube-mesh",
                    help="comma-separated catalog names")
    pw.add_argument("--patterns", default="uniform",
                    help="comma-separated traffic patterns (see repro.sim.PATTERNS)")
    pw.add_argument("--rates", default="0.1,0.2,0.3",
                    help="comma-separated offered loads (flits/node/cycle)")
    pw.add_argument("--seeds", default="1", help="comma-separated RNG seeds")
    pw.add_argument("--cycles", type=int, default=2500)
    pw.add_argument("--length", type=int, default=8, help="message length in flits")
    pw.add_argument("--jobs", type=int, default=None,
                    help="worker processes (default: one per CPU core; "
                         "0/1 = deterministic in-process)")
    pw.add_argument("--mesh-dims", default="8,8", help="dims for mesh algorithms")
    pw.add_argument("--torus-dims", default="8,8", help="dims for torus algorithms")
    pw.add_argument("--hypercube-dim", type=int, default=5,
                    help="dimension for hypercube algorithms")
    pw.add_argument("--format", default="table", choices=["table", "json"])
    pw.add_argument("--output", default=None, help="write the report to a file")

    pp = sub.add_parser(
        "profile",
        help="profile a named bench scenario with cProfile and rank hotspots",
    )
    pp.add_argument("scenario", nargs="?", default=None,
                    help="scenario name (see --list)")
    pp.add_argument("--list", action="store_true", help="list scenarios and exit")
    pp.add_argument("--top", type=int, default=20, help="hotspot rows to report")
    pp.add_argument("--sort", default="cumulative",
                    choices=["cumulative", "tottime", "ncalls"])
    pp.add_argument("--format", default="text", choices=["text", "json"])
    pp.add_argument("--output", default=None, help="write the report to a file")

    pf = sub.add_parser(
        "fuzz",
        help="differential-fuzz the verifiers with metamorphic oracles",
    )
    pf.add_argument("--seed", type=int, default=0, help="campaign master seed")
    pf.add_argument("--cases", type=int, default=200,
                    help="case budget (<= 0 = unbounded, use --seconds)")
    pf.add_argument("--seconds", type=float, default=None,
                    help="wall-clock budget (machine-dependent case coverage)")
    pf.add_argument("--families", default=None,
                    help="comma-separated generator families (default: all)")
    pf.add_argument("--stack", default="real",
                    help='oracle stack: "real" or "planted:<variant>"')
    pf.add_argument("--jobs", type=int, default=0,
                    help="worker processes (0/1 = deterministic in-process)")
    pf.add_argument("--corpus-dir", default=None,
                    help="save shrunk reproducers here (default: don't)")
    pf.add_argument("--shrink-budget", type=int, default=600,
                    help="max oracle evaluations per shrink")
    pf.add_argument("--replay-corpus", default=None, metavar="DIR",
                    help="replay a corpus directory instead of generating cases")

    px = sub.add_parser(
        "exists",
        help="decide whether any deadlock-free routing exists on a topology",
    )
    px.add_argument("--scenario", default=None,
                    help="scenario-registry name (see `python -m repro scenarios`)")
    px.add_argument("--topology", default=None, choices=list(family_names()),
                    help="topology family (alternative to --scenario)")
    px.add_argument("--dims", default=None,
                    help="comma-separated, e.g. 4,4 (hypercube: one number)")
    px.add_argument("--vcs", type=int, default=1, help="virtual channels per link")
    px.add_argument("--all", action="store_true", dest="all_scenarios",
                    help="decide every scenario-registry topology and print a table")
    px.add_argument("--witness", action="store_true",
                    help="on YES, synthesize and name the certified witness relation")
    px.add_argument("--delta", action="append", default=None, metavar="DELTA",
                    help="link delta, repeatable: down:SRC>DST@VC or up:SRC>DST@VC "
                         "(re-decided incrementally)")
    px.add_argument("--compare-full", action="store_true",
                    help="audit every incremental re-decision against a cold one")
    px.add_argument("--format", default="text", choices=["text", "json"])

    pi = sub.add_parser(
        "reverify",
        help="apply deltas to an algorithm and incrementally re-verify each one",
    )
    common(pi)
    pi.add_argument("--delta", action="append", default=None, metavar="DELTA",
                    help="compact delta, repeatable: down:SRC>DST@VC, up:SRC>DST@VC, "
                         "edit:KEY=CIDS[|WAITS] (edit:KEY clears), vc:+N")
    pi.add_argument("--compare-full", action="store_true",
                    help="audit every incremental verdict against a cold full rebuild")
    pi.add_argument("--no-triage", action="store_true",
                    help="skip the static triage screens; always run the full theorem check")

    pe = sub.add_parser(
        "serve",
        help="boot the sharded re-verification service on a burst of flap jobs",
    )
    pe.add_argument("--algorithms", default="all",
                    help="comma-separated catalog names (default: the whole catalog)")
    pe.add_argument("--events", type=int, default=40,
                    help="number of link-flap jobs to enqueue")
    pe.add_argument("--workers", type=int, default=2, help="asyncio shard workers")
    pe.add_argument("--seed", type=int, default=0, help="event-stream RNG seed")
    pe.add_argument("--sample", type=float, default=0.1,
                    help="fraction of jobs audited against a cold full rebuild")
    pe.add_argument("--expect-hit-rate", type=float, default=0.0,
                    help="fail unless the cache hit rate reaches this fraction")
    pe.add_argument("--mesh-dims", default="3,3", help="dims for mesh targets")
    pe.add_argument("--torus-dims", default="4,4", help="dims for torus targets")
    pe.add_argument("--hypercube-dim", type=int, default=3,
                    help="dimension for hypercube targets")

    pr = sub.add_parser(
        "regen-golden",
        help="rebuild tests/fixtures/sim_golden_digests.json (needs --force)",
    )
    pr.add_argument("--force", action="store_true",
                    help="actually rewrite the fixture")
    pr.add_argument("--check", action="store_true",
                    help="compare current digests against the fixture, write nothing")
    pr.add_argument("--only", default=None,
                    help="comma-separated case ids (default: the whole matrix)")
    pr.add_argument("--fixture", default=None,
                    help="alternate fixture path (default: the tests/ fixture)")

    args = parser.parse_args(argv)
    needs_topology = ("verify", "dot", "graph-stats", "simulate", "reverify")
    if args.command in needs_topology and args.topology is None:
        args.topology = CATALOG[args.algorithm].topology
    return {
        "catalog": cmd_catalog,
        "scenarios": cmd_scenarios,
        "verify": cmd_verify,
        "verify-batch": cmd_verify_batch,
        "lint": cmd_lint,
        "dot": cmd_dot,
        "graph-stats": cmd_graph_stats,
        "simulate": cmd_simulate,
        "sim-sweep": cmd_sim_sweep,
        "profile": cmd_profile,
        "fuzz": cmd_fuzz,
        "exists": cmd_exists,
        "reverify": cmd_reverify,
        "serve": cmd_serve,
        "regen-golden": cmd_regen_golden,
    }[args.command](args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `python -m repro dot | head`
        sys.exit(0)
