"""repro: deadlock-free adaptive wormhole routing, reproduced end to end.

Subpackages
-----------
* :mod:`repro.topology` -- interconnection networks and generators;
* :mod:`repro.routing` -- routing relations, waiting channels, and every
  routing algorithm the paper discusses;
* :mod:`repro.deps` -- channel dependency graphs and Duato's extended CDG;
* :mod:`repro.core` -- the channel waiting graph theory (the paper's
  contribution): CWG, cycle classification, True-Cycle search, CWG'
  reduction;
* :mod:`repro.verify` -- one-call deadlock-freedom verifiers for all three
  generations of the theory;
* :mod:`repro.sim` -- a flit-level wormhole simulator with runtime deadlock
  detection and fault injection;
* :mod:`repro.metrics` -- degree-of-adaptiveness and path-diversity metrics.

Quick start::

    from repro.topology import build_mesh
    from repro.routing import HighestPositiveLast
    from repro.verify import verify

    print(verify(HighestPositiveLast(build_mesh((4, 4)))))
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
