"""Batch verification pipeline: parallel sweeps with a content-addressed cache.

The production layer over the verifiers: fingerprint ``(network, routing
relation)`` pairs (:mod:`~repro.pipeline.fingerprint`), memoize CWG
construction, cycle enumeration, reductions, and whole verdicts across calls
and processes (:mod:`~repro.pipeline.cache`), and sweep many (topology,
algorithm) jobs concurrently with per-stage observability
(:mod:`~repro.pipeline.engine`, :mod:`~repro.pipeline.observability`).

Exposed on the command line as ``python -m repro verify-batch``.
"""

from .cache import (
    VerificationCache,
    cached_cwg,
    cached_cycles,
    cached_reduction,
    cached_verdict,
    payload_to_verdict,
    slim_evidence,
    verdict_to_payload,
    verdicts_digest,
)
from .engine import (
    CONDITIONS,
    DEFAULT_CONDITIONS,
    BatchReport,
    BatchVerifier,
    ConditionResult,
    JobResult,
    JobSpec,
    build_topology,
    catalog_spec,
    catalog_specs,
    run_job,
    verify_catalog,
)
from .fingerprint import fingerprint_network, fingerprint_relation
from .observability import StageMetrics

__all__ = [
    "BatchReport",
    "BatchVerifier",
    "CONDITIONS",
    "ConditionResult",
    "DEFAULT_CONDITIONS",
    "JobResult",
    "JobSpec",
    "StageMetrics",
    "VerificationCache",
    "build_topology",
    "cached_cwg",
    "cached_cycles",
    "cached_reduction",
    "cached_verdict",
    "catalog_spec",
    "catalog_specs",
    "fingerprint_network",
    "fingerprint_relation",
    "payload_to_verdict",
    "run_job",
    "slim_evidence",
    "verdict_to_payload",
    "verdicts_digest",
    "verify_catalog",
]
