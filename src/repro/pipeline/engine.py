"""Batch verification engine: many (topology, routing algorithm) pairs at once.

The ROADMAP's production goal is verifying *catalogs* of routing algorithms,
not one algorithm per process invocation.  This module turns a list of
:class:`JobSpec` descriptions into a :class:`BatchReport`:

* each job builds its network and algorithm, fingerprints the pair
  (:mod:`repro.pipeline.fingerprint`), and runs the requested conditions --
  the paper's Theorem 2/3 (`verify`), Duato's ECDG condition
  (`search_escape`), and Dally--Seitz -- through the content-addressed
  cache (:mod:`repro.pipeline.cache`);
* jobs run either in-process (deterministic serial fallback, also the mode
  tests compare against) or concurrently on a ``concurrent.futures``
  process pool -- cycle enumeration and the True-Cycle search are CPU-bound
  pure Python, so processes, not threads;
* per-stage timers and counters (cache hits, cycles enumerated, search
  nodes, reduction backtracks) are accumulated per job and merged into the
  report (:mod:`repro.pipeline.observability`).

Job specs are plain picklable data (catalog names + topology parameters,
never live objects), so the same spec list drives both execution modes and
the on-disk cache directory is the only state workers share.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..analyze.screens import triage, triage_verdict
from ..core.transitions import TransitionCache
from ..routing.catalog import CATALOG, make
from ..routing.relation import RoutingAlgorithm
from ..scenario import TopologySpec
from ..topology.network import Network
from ..verify import dally_seitz, search_escape, verify
from .cache import VerificationCache, cached_cwg, cached_verdict, slim_evidence
from .observability import StageMetrics

#: condition keys -> human label used in reports
CONDITIONS = {
    "theorem": "Theorem 2/3 (CWG)",
    "duato": "Duato (ECDG)",
    "dally-seitz": "Dally-Seitz (CDG)",
}
DEFAULT_CONDITIONS = ("theorem", "duato", "dally-seitz")

#: verification-sized default dims per resizable family -- the instances the
#: pinned verdict matrices have always used (callers may override)
_DEFAULT_DIMS: dict[str, tuple[int, ...]] = {
    "mesh": (4, 4),
    "torus": (4, 4),
    "hypercube": (3,),
    "mesh3d": (3, 3, 3),
    "sparse-pillar": (3, 3, 3),
}


def build_topology(
    topology: str | TopologySpec,
    dims: tuple[int, ...] | None = None,
    vcs: int | None = None,
) -> Network:
    """Instantiate a topology from a family name or spec string.

    Thin shim over the scenario registry (shared with the CLI): ``topology``
    may be a bare family name (``"mesh"``), a full
    :class:`~repro.scenario.TopologySpec` string (``"mesh:4x4:v2"``), or an
    already-parsed spec.  Explicit ``dims``/``vcs`` override the spec;
    missing dims fall back to the family's verification-sized default.
    """
    spec = TopologySpec.parse(topology) if isinstance(topology, str) else topology
    spec = spec.with_dims(dims).with_vcs(vcs)
    if spec.dims is None and spec.family in _DEFAULT_DIMS:
        spec = spec.with_dims(_DEFAULT_DIMS[spec.family])
    return spec.build()


@dataclass(frozen=True)
class JobSpec:
    """One (algorithm, topology) verification job -- plain picklable data.

    ``topology`` is a full :class:`~repro.scenario.TopologySpec`; the stable
    string codec (``"mesh:3x3"``, ``"hypercube:3:v2"``) is accepted and
    parsed, so hand-written specs stay one-liners.
    """

    algorithm: str
    topology: TopologySpec
    conditions: tuple[str, ...] = DEFAULT_CONDITIONS
    #: run the repro.analyze triage screens before the theorem checker and
    #: skip it when a screen decides (False forces the full check)
    triage: bool = True

    def __post_init__(self) -> None:
        if isinstance(self.topology, str):
            object.__setattr__(self, "topology", TopologySpec.parse(self.topology))

    @property
    def dims(self) -> tuple[int, ...] | None:
        return self.topology.dims

    @property
    def vcs(self) -> int | None:
        return self.topology.vcs

    def build(self) -> RoutingAlgorithm:
        net = build_topology(self.topology)
        return make(self.algorithm, net)

    def describe(self) -> str:
        return f"{self.algorithm} on {self.topology.describe()}"


def catalog_specs(
    names: list[str] | None = None,
    *,
    mesh_dims: tuple[int, ...] = (4, 4),
    torus_dims: tuple[int, ...] = (4, 4),
    hypercube_dim: int = 3,
    conditions: tuple[str, ...] = DEFAULT_CONDITIONS,
    triage: bool = True,
) -> list[JobSpec]:
    """Job specs for (a subset of) the scenario registry on default topologies.

    Each spec's topology comes from the registered scenario's canonical
    :class:`~repro.scenario.TopologySpec`, resized per family by the
    ``*_dims`` arguments; families without an override (figure1/figure4 and
    the 3D scenarios) keep their canonical instances.
    """
    family_dims: dict[str, tuple[int, ...] | int] = {
        "mesh": mesh_dims,
        "torus": torus_dims,
        "hypercube": hypercube_dim,
    }
    specs = []
    for name in sorted(names if names is not None else CATALOG):
        entry = CATALOG[name]
        specs.append(JobSpec(
            algorithm=name,
            topology=entry.topology_for(family_dims),
            conditions=conditions,
            triage=triage,
        ))
    return specs


def catalog_spec(name: str, **kwargs) -> JobSpec:
    """The single-job convenience variant of :func:`catalog_specs`."""
    return catalog_specs([name], **kwargs)[0]


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class ConditionResult:
    """One condition's outcome on one job."""

    key: str                   # "theorem" | "duato" | "dally-seitz"
    condition: str             # verdict label, e.g. "Theorem 2"
    deadlock_free: bool
    necessary_and_sufficient: bool
    reason: str
    seconds: float
    cached: bool
    evidence: dict[str, Any] = field(default_factory=dict)


@dataclass
class JobResult:
    """Outcome of one job: per-condition verdicts or an error."""

    spec: JobSpec
    network: str = ""
    fingerprint: str = ""
    results: list[ConditionResult] = field(default_factory=list)
    error: str | None = None
    seconds: float = 0.0
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.error is None

    def result_for(self, key: str) -> ConditionResult | None:
        for r in self.results:
            if r.key == key:
                return r
        return None


@dataclass
class BatchReport:
    """A whole batch run: ordered job results plus aggregate observability."""

    jobs: list[JobResult]
    seconds: float
    workers: int
    cache: dict[str, int] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def errors(self) -> list[JobResult]:
        return [j for j in self.jobs if not j.ok]

    def verdicts(self, key: str = "theorem") -> dict[str, bool]:
        """algorithm name -> deadlock_free under ``key`` (completed jobs only)."""
        out: dict[str, bool] = {}
        for j in self.jobs:
            r = j.result_for(key)
            if j.ok and r is not None:
                out[j.spec.algorithm] = r.deadlock_free
        return out


# ----------------------------------------------------------------------
# single-job execution
# ----------------------------------------------------------------------
def _extract_counters(verdict, metrics: StageMetrics) -> None:
    ev = verdict.evidence
    for counter, evidence_key in (
        ("cycles_enumerated", "cycles"),
        ("search_nodes", "nodes_explored"),
        ("cwg_edges", "cwg_edges"),
        ("ecdg_edges", "ecdg_edges"),
    ):
        v = ev.get(evidence_key)
        if isinstance(v, int):
            metrics.count(counter, v)
    red = ev.get("reduction")
    if red is not None and hasattr(red, "steps"):
        metrics.count(
            "reduction_backtracks",
            sum(1 for s in red.steps if s.action == "backtrack"),
        )


def run_job(spec: JobSpec, cache: VerificationCache | None = None) -> JobResult:
    """Run one job in-process; exceptions become an error result, not a crash."""
    metrics = StageMetrics()
    t0 = time.perf_counter()
    hits0 = cache.hits if cache is not None else 0
    miss0 = cache.misses if cache is not None else 0
    out = JobResult(spec=spec)
    try:
        with metrics.timer("build"):
            ra = spec.build()
        out.network = ra.network.name
        transitions = TransitionCache(ra)
        with metrics.timer("fingerprint"):
            fp = ra.fingerprint(transitions=transitions)
        out.fingerprint = fp
        for key in spec.conditions:
            if key not in CONDITIONS:
                raise ValueError(f"unknown condition {key!r}; have {sorted(CONDITIONS)}")
            tc = time.perf_counter()
            with metrics.timer(f"verify:{key}"):
                if key == "theorem":
                    def compute():
                        # Build (and cache) the CWG at most once per job: the
                        # ordering-certificate screen can decide from the CDG
                        # alone, and a triage fall-through must hand the deep
                        # screens' graph straight to the theorem checker.
                        built: list = []

                        def build_cwg():
                            if not built:
                                with metrics.timer("cwg"):
                                    built.append(cached_cwg(
                                        ra, cache, fingerprint=fp, transitions=transitions))
                            return built[0]

                        if spec.triage:
                            with metrics.timer("triage"):
                                tri = triage(ra, transitions=transitions,
                                             cwg_builder=build_cwg)
                            if tri.decided:
                                metrics.count("triage_decided")
                                metrics.count(f"triage_screen:{tri.decided_by}")
                                return triage_verdict(ra, tri)
                            metrics.count("triage_full_check")
                        return verify(ra, cwg=build_cwg())
                elif key == "duato":
                    compute = lambda: search_escape(ra)  # noqa: E731
                else:
                    compute = lambda: dally_seitz(ra)  # noqa: E731
                verdict, was_cached = cached_verdict(ra, key, compute, cache, fingerprint=fp)
            if not was_cached:
                _extract_counters(verdict, metrics)
            out.results.append(ConditionResult(
                key=key,
                condition=verdict.condition,
                deadlock_free=verdict.deadlock_free,
                necessary_and_sufficient=verdict.necessary_and_sufficient,
                reason=verdict.reason,
                seconds=time.perf_counter() - tc,
                cached=was_cached,
                evidence=slim_evidence(verdict.evidence),
            ))
    except Exception as exc:  # graceful degradation: report, don't propagate
        out.error = f"{type(exc).__name__}: {exc}"
    if cache is not None:
        metrics.count("cache_hits", cache.hits - hits0)
        metrics.count("cache_misses", cache.misses - miss0)
    out.seconds = time.perf_counter() - t0
    out.metrics = metrics.snapshot()
    return out


def _pool_run_job(spec: JobSpec, cache_dir: str | None) -> JobResult:
    """Process-pool entry point: workers share the on-disk cache layer only."""
    cache = VerificationCache(cache_dir) if cache_dir else None
    return run_job(spec, cache)


# ----------------------------------------------------------------------
# the batch verifier
# ----------------------------------------------------------------------
class BatchVerifier:
    """Runs job specs serially or on a process pool, through one cache.

    Parameters
    ----------
    workers:
        ``None``, 0, or 1 selects the deterministic in-process mode; ``n > 1``
        a ``ProcessPoolExecutor`` with ``n`` workers.  Pool failures (a dead
        worker, an unpicklable result, a sandbox that forbids forking)
        degrade to in-process execution of the affected jobs -- a batch
        always produces one result per spec, in spec order.
    cache / cache_dir:
        A :class:`VerificationCache` to reuse, or a directory for a shared
        on-disk cache (the only option that benefits pool workers, which
        cannot see this process's memory).  Neither given = no caching.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        cache: VerificationCache | None = None,
        cache_dir: str | Path | None = None,
    ) -> None:
        self.workers = int(workers or 0)
        if cache is None and cache_dir is not None:
            cache = VerificationCache(cache_dir)
        self.cache = cache

    # ------------------------------------------------------------------
    def run(self, specs: list[JobSpec]) -> BatchReport:
        t0 = time.perf_counter()
        if self.workers > 1:
            results = self._run_pool(specs)
        else:
            results = [run_job(s, self.cache) for s in specs]
        merged = StageMetrics()
        for r in results:
            merged.merge(r.metrics)
        return BatchReport(
            jobs=results,
            seconds=time.perf_counter() - t0,
            workers=max(self.workers, 1),
            cache=self.cache.stats() if self.cache is not None else {},
            metrics=merged.snapshot(),
        )

    def _run_pool(self, specs: list[JobSpec]) -> list[JobResult]:
        cache_dir = (
            str(self.cache.directory)
            if self.cache is not None and self.cache.directory is not None
            else None
        )
        try:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                futures = [pool.submit(_pool_run_job, s, cache_dir) for s in specs]
                results = []
                for spec, fut in zip(specs, futures):
                    try:
                        results.append(fut.result())
                    except Exception:  # worker death/transport failure: retry here
                        results.append(run_job(spec, self.cache))
                return results
        except OSError:
            # pool could not start at all: deterministic serial fallback
            return [run_job(s, self.cache) for s in specs]


def verify_catalog(
    names: list[str] | None = None,
    *,
    workers: int | None = None,
    cache: VerificationCache | None = None,
    cache_dir: str | Path | None = None,
    conditions: tuple[str, ...] = DEFAULT_CONDITIONS,
    **spec_kwargs,
) -> BatchReport:
    """One-call catalog sweep: ``verify_catalog()`` == CLI ``verify-batch``."""
    specs = catalog_specs(names, conditions=conditions, **spec_kwargs)
    return BatchVerifier(workers=workers, cache=cache, cache_dir=cache_dir).run(specs)
