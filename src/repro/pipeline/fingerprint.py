"""Content-addressed fingerprints of networks and routing relations.

The batch pipeline memoizes expensive artifacts -- CWG construction,
simple-cycle enumeration, reduction results, whole verdicts -- across calls
and across processes.  A cache entry is valid exactly as long as the
*content* it was computed from is unchanged, so cache keys are digests of
that content, not of object identities or class names:

* a network is its channel list (ids, endpoints, VC indices, kinds, labels,
  generator metadata) plus node count and coordinates -- everything the
  graph constructions and the simulator consult;
* a routing relation is its full reachable routing table: for every
  destination and every reachable routing state, the permitted outputs and
  the waiting set.  Two relations with identical tables verify identically,
  whatever code produced them, so the algorithm *name* is deliberately
  excluded.

Fingerprints are hex BLAKE2b digests, stable across processes and Python
versions (only integers and explicit strings are hashed -- never ``repr`` of
objects with addresses, never hash-randomized strings).
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.depgraph import DepGraph
    from ..core.transitions import DestinationTransitions, TransitionCache
    from ..routing.relation import RoutingAlgorithm
    from ..topology.network import Network

_DIGEST_SIZE = 20


def _hasher() -> "hashlib.blake2b":
    return hashlib.blake2b(digest_size=_DIGEST_SIZE)


def _meta_token(meta: dict) -> str:
    """Canonical text for a metadata dict (sorted keys, primitive values)."""
    return ";".join(f"{k}={meta[k]!r}" for k in sorted(meta))


def fingerprint_network(network: "Network") -> str:
    """Digest of a network's full structure (nodes, channels, coords, meta)."""
    h = _hasher()
    h.update(b"network/v1\n")
    h.update(f"nodes={network.num_nodes}\n".encode())
    for c in network.channels:
        h.update(
            f"ch {c.cid} {c.src} {c.dst} {c.vc} {c.kind.value} "
            f"{c.label} [{_meta_token(c.meta)}]\n".encode()
        )
    for node in sorted(network.coords):
        h.update(f"coord {node} {network.coords[node]!r}\n".encode())
    h.update(f"meta [{_meta_token(network.meta)}]\n".encode())
    return h.hexdigest()


def fingerprint_depgraph(dep: "DepGraph") -> str:
    """Digest of a :class:`~repro.core.depgraph.DepGraph`'s CSR arrays.

    Hashes the vertex count, the ``indptr`` / ``indices`` adjacency arrays,
    and the per-edge payload masks (hex) -- the graph's entire observable
    content, so two kernels with equal fingerprints answer every structure,
    cycle, and witness query identically.  Used to key graph-derived cache
    stages (cycle enumerations) directly on graph content: distinct routing
    relations producing the same CWG share one entry.
    """
    h = _hasher()
    h.update(b"depgraph/v1\n")
    h.update(f"n={dep.num_vertices}\n".encode())
    h.update(",".join(map(str, dep.indptr)).encode())
    h.update(b"\n")
    h.update(",".join(map(str, dep.indices)).encode())
    h.update(b"\n")
    h.update(",".join(format(m, "x") for m in dep.masks).encode())
    return h.hexdigest()


def relation_header(algorithm: "RoutingAlgorithm") -> bytes:
    """The destination-independent prefix of a relation fingerprint.

    Covers the network structure, the relation form, and the wait policy.
    :func:`fingerprint_relation` is, by construction, the digest of this
    header followed by one :func:`relation_segment` per destination -- so
    incremental callers may cache segments per destination and recombine
    them without ever diverging from the batch pipeline's fingerprints.
    """
    return (
        b"relation/v1\n"
        + fingerprint_network(algorithm.network).encode()
        + f"\nform={algorithm.form} wait={algorithm.wait_policy.value}\n".encode()
    )


def relation_segment(dest: int, dt: "DestinationTransitions") -> bytes:
    """Canonical bytes for one destination's routing table slice."""
    lines = []
    for c in sorted(dt.succ, key=lambda ch: ch.cid):
        succ = ",".join(str(o.cid) for o in sorted(dt.succ[c], key=lambda ch: ch.cid))
        wait = ",".join(str(w.cid) for w in sorted(dt.wait[c], key=lambda ch: ch.cid))
        lines.append(f"{dest}:{c.cid} -> [{succ}] wait [{wait}]\n")
    return "".join(lines).encode()


def fingerprint_relation(
    algorithm: "RoutingAlgorithm",
    *,
    transitions: "TransitionCache | None" = None,
) -> str:
    """Digest of a routing relation: network + wait policy + full table.

    Enumerates the same reachable routing states the graph constructions
    consume (via :class:`~repro.core.transitions.TransitionCache`, shared
    with the caller when provided so the table is built only once) and
    hashes, per state, the permitted output set and the waiting set.
    """
    from ..core.transitions import TransitionCache

    h = _hasher()
    h.update(relation_header(algorithm))
    cache = transitions or TransitionCache(algorithm)
    for dest in algorithm.network.nodes:
        h.update(relation_segment(dest, cache[dest]))
    return h.hexdigest()
