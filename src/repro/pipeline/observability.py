"""Lightweight observability for the batch pipeline.

Per-stage wall-clock timers and named counters, accumulated into plain
dictionaries so they serialize into reports unchanged and merge across
workers.  Nothing here samples or threads: stages are timed with a context
manager around the code that runs them, and counters are bumped explicitly
where the quantity is known (cache hits, cycles enumerated, reduction
backtracks, search nodes explored).
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class StageMetrics:
    """Accumulated per-stage timers (seconds) and counters."""

    def __init__(self) -> None:
        self.timers: dict[str, float] = {}
        self.counters: dict[str, int] = {}
        self.observations: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    @contextmanager
    def timer(self, stage: str):
        """Time a ``with`` block under ``stage`` (accumulating on re-entry)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.timers[stage] = self.timers.get(stage, 0.0) + (time.perf_counter() - t0)

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record one sample of a distribution (latencies, frontier sizes).

        Kept as running ``count/total/min/max`` aggregates -- enough for the
        service's latency reporting without storing per-sample history.
        """
        obs = self.observations.get(name)
        if obs is None:
            self.observations[name] = {
                "count": 1.0, "total": value, "min": value, "max": value,
            }
            return
        obs["count"] += 1.0
        obs["total"] += value
        if value < obs["min"]:
            obs["min"] = value
        if value > obs["max"]:
            obs["max"] = value

    # ------------------------------------------------------------------
    def merge(self, other: "StageMetrics | dict") -> None:
        """Fold another metrics object (or its snapshot) into this one."""
        snap = other.snapshot() if isinstance(other, StageMetrics) else other
        for k, v in snap.get("timers", {}).items():
            self.timers[k] = self.timers.get(k, 0.0) + v
        for k, v in snap.get("counters", {}).items():
            self.counters[k] = self.counters.get(k, 0) + v
        for k, o in snap.get("observations", {}).items():
            mine = self.observations.get(k)
            if mine is None:
                self.observations[k] = {
                    "count": o["count"], "total": o["total"],
                    "min": o["min"], "max": o["max"],
                }
                continue
            mine["count"] += o["count"]
            mine["total"] += o["total"]
            mine["min"] = min(mine["min"], o["min"])
            mine["max"] = max(mine["max"], o["max"])

    def snapshot(self) -> dict:
        """Plain-dict view suitable for JSON reports."""
        return {
            "timers": {k: round(v, 6) for k, v in sorted(self.timers.items())},
            "counters": dict(sorted(self.counters.items())),
            "observations": {
                k: {
                    "count": o["count"],
                    "total": o["total"],
                    "min": o["min"],
                    "max": o["max"],
                    "mean": o["total"] / o["count"] if o["count"] else 0.0,
                }
                for k, o in sorted(self.observations.items())
            },
        }

    def describe(self) -> str:
        """Multi-line text rendering for the CLI report footer."""
        lines = []
        if self.timers:
            lines.append("stage timers:")
            lines.extend(
                f"  {k:<24} {v:8.3f}s" for k, v in sorted(self.timers.items())
            )
        if self.counters:
            lines.append("counters:")
            lines.extend(f"  {k:<24} {v:8d}" for k, v in sorted(self.counters.items()))
        if self.observations:
            lines.append("observations:")
            for k, o in sorted(self.observations.items()):
                mean = o["total"] / o["count"] if o["count"] else 0.0
                lines.append(
                    f"  {k:<24} n={int(o['count'])} mean={mean:.6f} "
                    f"min={o['min']:.6f} max={o['max']:.6f}"
                )
        return "\n".join(lines)
