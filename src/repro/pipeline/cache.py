"""Content-addressed cache for verification artifacts.

Keys are ``(fingerprint, stage)`` pairs where the fingerprint comes from
:mod:`repro.pipeline.fingerprint` -- so a cache entry can never be stale:
mutate the network or the routing relation in any observable way and the
key changes.  Payloads are JSON-serializable by construction (channel ids,
not channel objects), which keeps entries portable across processes -- the
process-pool workers of the batch engine share one on-disk cache directory.

Three artifact layers are memoized, cheapest-to-rebuild last:

* whole verdicts (``verdict:<condition>``) -- the big win for catalog
  re-sweeps;
* CWG edge sets with their destination witnesses (``cwg``), restored via
  :meth:`repro.core.cwg.ChannelWaitingGraph.from_cached_edges`;
* simple-cycle enumerations (``cycles``) and Section 8 reduction outcomes
  (``reduction``).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from collections.abc import Iterable
from pathlib import Path
from typing import Any

from ..core.cwg import ChannelWaitingGraph
from ..core.cycles import Cycle, CycleExplosion, find_cycles
from ..core.reduction import CWGReducer, ReductionResult
from ..routing.relation import RoutingAlgorithm
from ..topology.network import Network
from ..verify.report import Verdict, stable_evidence


class VerificationCache:
    """LRU memo store with an optional shared on-disk layer.

    Without a ``directory`` the cache lives in this process only (the
    deterministic in-process engine mode); with one, entries are also
    persisted as one JSON file per key so concurrent workers and later runs
    reuse them.

    ``max_entries`` bounds the store (``None`` = unbounded): inserting past
    the bound evicts the least-recently-used key, removing its disk file
    too -- the long-running re-verification service leans on this so a
    fault-sweep burst cannot grow the store without bound.

    Corruption is *never* an error: a truncated, non-JSON, or structurally
    wrong entry -- whether caught here by the type gate or downstream by a
    consumer that calls :meth:`note_corrupt` -- is treated as a miss, its
    file is deleted, and the artifact is recomputed and overwritten.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        max_entries: int | None = None,
    ) -> None:
        self._mem: OrderedDict[str, Any] = OrderedDict()
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    @staticmethod
    def key(fingerprint: str, stage: str) -> str:
        return f"{stage.replace(':', '_').replace('/', '_')}-{fingerprint}"

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / f"{key}.json"

    def _unlink(self, key: str) -> None:
        if self.directory is not None:
            try:
                self._path(key).unlink()
            except OSError:
                pass

    def _remember(self, key: str, payload: Any) -> None:
        """Insert at the most-recent end, evicting LRU keys past the bound."""
        self._mem[key] = payload
        self._mem.move_to_end(key)
        if self.max_entries is not None:
            while len(self._mem) > self.max_entries:
                victim, _ = self._mem.popitem(last=False)
                self.evictions += 1
                self._unlink(victim)

    def get(self, fingerprint: str, stage: str) -> Any | None:
        """Cached payload for ``(fingerprint, stage)`` or ``None``."""
        key = self.key(fingerprint, stage)
        if key in self._mem:
            self._mem.move_to_end(key)
            self.hits += 1
            return self._mem[key]
        if self.directory is not None:
            path = self._path(key)
            if path.exists():
                try:
                    payload = json.loads(path.read_text())
                except (OSError, ValueError):
                    payload = None
                # Type gate: every artifact layer stores a dict or a list;
                # anything else is a corrupted/foreign file.
                if payload is not None and isinstance(payload, (dict, list)):
                    self._remember(key, payload)
                    self.hits += 1
                    return payload
                self.corrupt += 1
                self._unlink(key)
        self.misses += 1
        return None

    def put(self, fingerprint: str, stage: str, payload: Any) -> None:
        """Store a JSON-serializable payload under ``(fingerprint, stage)``."""
        key = self.key(fingerprint, stage)
        self._remember(key, payload)
        self.stores += 1
        if self.directory is not None:
            path = self._path(key)
            # atomic publish: concurrent workers may race on the same key
            fd, tmp = tempfile.mkstemp(dir=str(self.directory), suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as f:
                    json.dump(payload, f)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def note_corrupt(self, fingerprint: str, stage: str) -> None:
        """A consumer failed to rehydrate this entry: drop it everywhere.

        The earlier ``get`` counted a hit for it; rebalance that into a miss
        so hit-rate accounting reflects what actually happened.
        """
        key = self.key(fingerprint, stage)
        self._mem.pop(key, None)
        self._unlink(key)
        self.corrupt += 1
        if self.hits > 0:
            self.hits -= 1
        self.misses += 1

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0.0 when none ran)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "entries": len(self._mem),
            "hit_rate": round(self.hit_rate, 4),
        }

    def __len__(self) -> int:
        return len(self._mem)


# ----------------------------------------------------------------------
# memoized artifact builders
# ----------------------------------------------------------------------
#: what rehydrating a structurally wrong (but JSON-parseable) payload raises
_RESTORE_ERRORS = (KeyError, TypeError, ValueError, AttributeError, IndexError)


def cached_cwg(
    algorithm: RoutingAlgorithm,
    cache: VerificationCache | None,
    *,
    fingerprint: str | None = None,
    transitions=None,
) -> ChannelWaitingGraph:
    """Build (or restore) the CWG of ``algorithm`` through the cache."""
    if cache is None:
        return ChannelWaitingGraph(algorithm, transitions=transitions)
    fp = fingerprint or algorithm.fingerprint(transitions=transitions)
    payload = cache.get(fp, "cwg")
    if payload is not None:
        try:
            return ChannelWaitingGraph.from_cached_edges(
                algorithm, payload, transitions=transitions
            )
        except _RESTORE_ERRORS:
            cache.note_corrupt(fp, "cwg")
    cwg = ChannelWaitingGraph(algorithm, transitions=transitions)
    cache.put(fp, "cwg", cwg.cache_payload())
    return cwg


def cached_cycles(
    cwg: ChannelWaitingGraph,
    cache: VerificationCache | None,
    *,
    fingerprint: str | None = None,
    limit: int | None = 100_000,
) -> list[Cycle]:
    """Enumerate (or restore) the simple cycles of a CWG through the cache.

    Keyed on the kernel's CSR fingerprint by default (not the relation's):
    the cycle list is a pure function of the graph, so any two relations
    with identical CWGs share the entry.
    """
    if cache is None:
        return find_cycles(cwg.dep, limit=limit)
    net = cwg.algorithm.network
    fp = fingerprint or cwg.dep.fingerprint()
    payload = cache.get(fp, "cycles")
    if payload is not None:
        try:
            if payload.get("limit_ok", False):
                return [
                    Cycle(tuple(net.channel(cid) for cid in cids))
                    for cids in payload["cycles"]
                ]
        except _RESTORE_ERRORS:
            cache.note_corrupt(fp, "cycles")
    try:
        cycles = find_cycles(cwg.dep, limit=limit)
    except CycleExplosion:
        cache.put(fp, "cycles", {"limit_ok": False, "cycles": []})
        raise
    cache.put(
        fp,
        "cycles",
        {"limit_ok": True, "cycles": [[c.cid for c in cy.channels] for cy in cycles]},
    )
    return cycles


def cached_reduction(
    cwg: ChannelWaitingGraph,
    cache: VerificationCache | None,
    *,
    fingerprint: str | None = None,
    cycle_limit: int | None = 100_000,
) -> ReductionResult:
    """Run (or restore) the Section 8 CWG -> CWG' reduction through the cache.

    Restored results carry the removal set, success flag, and reason; the
    step trace and per-cycle classifications (only needed by the worked
    examples) are recomputed on demand by running the reducer directly.

    Unlike :func:`cached_cycles` this stays keyed on the *relation*
    fingerprint: wait-connectivity (Definition 10) consults the per-state
    waiting sets, which the CWG's edge content does not determine.
    """
    if cache is None:
        return CWGReducer(cwg, cycle_limit=cycle_limit).run()
    net = cwg.algorithm.network
    fp = fingerprint or cwg.algorithm.fingerprint(transitions=cwg.transitions)
    payload = cache.get(fp, "reduction")
    if payload is not None:
        try:
            removed = frozenset(
                (net.channel(a), net.channel(b)) for a, b in payload["removed"]
            )
            return ReductionResult(
                payload["success"], removed, [], [], reason=payload["reason"]
            )
        except _RESTORE_ERRORS:
            cache.note_corrupt(fp, "reduction")
    result = CWGReducer(cwg, cycle_limit=cycle_limit).run()
    cache.put(
        fp,
        "reduction",
        {
            "success": result.success,
            "removed": sorted((a.cid, b.cid) for a, b in result.removed),
            "reason": result.reason,
            "backtracks": sum(1 for s in result.steps if s.action == "backtrack"),
        },
    )
    return result


# ----------------------------------------------------------------------
# verdict (de)hydration
# ----------------------------------------------------------------------
#: evidence values preserved verbatim in cached verdicts / reports
_SCALAR = (bool, int, float, str)


def slim_evidence(evidence: dict[str, Any]) -> dict[str, Any]:
    """JSON-safe projection of a verdict's evidence.

    Scalars survive unchanged; cycle witnesses become their channel-id
    lists; rich objects (classifications, deadlock configurations,
    reduction traces) are summarized to strings -- the full objects are
    recomputable, the report only needs the headline facts.

    Evidence is canonicalized first (:func:`stable_evidence`), so set-valued
    witnesses serialize in one deterministic order no matter which
    process-pool worker produced them.
    """
    out: dict[str, Any] = {}
    for k, v in stable_evidence(evidence).items():
        if isinstance(v, _SCALAR):
            out[k] = v
        elif isinstance(v, Cycle):
            out[k] = [c.cid for c in v.channels]
        elif isinstance(v, list) and all(isinstance(x, _SCALAR) for x in v):
            out[k] = v
        elif isinstance(v, list) and v and all(hasattr(x, "cid") for x in v):
            out[k] = [x.cid for x in v]
        else:
            out[k] = repr(v)
    return out


def verdict_to_payload(verdict: Verdict) -> dict[str, Any]:
    return {
        "algorithm": verdict.algorithm,
        "condition": verdict.condition,
        "deadlock_free": verdict.deadlock_free,
        "necessary_and_sufficient": verdict.necessary_and_sufficient,
        "reason": verdict.reason,
        "evidence": slim_evidence(verdict.evidence),
    }


def payload_to_verdict(payload: dict[str, Any]) -> Verdict:
    return Verdict(
        payload["algorithm"],
        payload["condition"],
        payload["deadlock_free"],
        necessary_and_sufficient=payload["necessary_and_sufficient"],
        reason=payload["reason"],
        evidence=dict(payload["evidence"]),
    )


def cached_verdict(
    algorithm: RoutingAlgorithm,
    condition: str,
    compute,
    cache: VerificationCache | None,
    *,
    fingerprint: str | None = None,
) -> tuple[Verdict, bool]:
    """Memoize a whole verification verdict.

    ``compute`` is a zero-argument callable producing the
    :class:`~repro.verify.report.Verdict`.  Returns ``(verdict, was_cached)``.
    """
    if cache is None:
        return compute(), False
    fp = fingerprint or algorithm.fingerprint()
    stage = f"verdict:{condition}"
    payload = cache.get(fp, stage)
    if payload is not None:
        try:
            return payload_to_verdict(payload), True
        except _RESTORE_ERRORS:
            cache.note_corrupt(fp, stage)
    verdict = compute()
    cache.put(fp, stage, verdict_to_payload(verdict))
    return verdict, False


def verdicts_digest(verdicts: Iterable[Verdict]) -> str:
    """Order-sensitive digest of a sequence of verdicts.

    Hashes each verdict's canonical cached payload (:func:`verdict_to_payload`
    over :func:`slim_evidence`-canonicalized evidence), so two runs agree iff
    they produced byte-identical verdicts *including* reasons and witness
    evidence -- the equality the incremental-vs-full metamorphic battery
    pins.  Cache round-trips preserve it because ``slim_evidence`` is
    idempotent on its own output.
    """
    h = hashlib.blake2b(digest_size=20)
    for v in verdicts:
        h.update(json.dumps(verdict_to_payload(v), sort_keys=True).encode())
        h.update(b"\x00")
    return h.hexdigest()


def network_fingerprint(network: Network) -> str:
    """Convenience re-export used by callers that only have a network."""
    return network.fingerprint()
