"""Service layer: sharded, continuously re-verifying sessions as a queue.

See :mod:`repro.serve.service`; exposed on the command line as
``python -m repro serve`` (burst smoke mode) and consumed by the
``serve-smoke`` CI job.
"""

from .service import (
    AuditMismatchError,
    JobOutcome,
    ReverifyJob,
    ServiceReport,
    VerificationService,
    shard_of,
)

__all__ = [
    "AuditMismatchError",
    "JobOutcome",
    "ReverifyJob",
    "ServiceReport",
    "VerificationService",
    "shard_of",
]
