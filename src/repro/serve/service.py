"""A delta-aware verification service over incremental sessions.

The batch pipeline answers "is this frozen catalog deadlock-free?"; the
service answers the operational question "is the *evolving* fabric still
deadlock-free after this event?".  Jobs name a catalog algorithm and carry
one :mod:`~repro.incremental.deltas` delta; the service shards them by
target onto asyncio workers, each of which owns long-lived
:class:`~repro.incremental.session.IncrementalSession` objects (shard
affinity keeps every delta stream for one target on one worker, so session
state is never shared across workers), re-verifies through the shared
content-addressed :class:`~repro.pipeline.cache.VerificationCache`, and --
on a deterministic sample of jobs -- audits its own answers against a cold
full rebuild (:meth:`IncrementalSession.full_check`).

Everything observable (queue latency, re-verify latency, cache hit rate,
equivalence audits) flows through
:class:`~repro.pipeline.observability.StageMetrics` and the final
:class:`ServiceReport`, which the ``python -m repro serve`` smoke entry
point turns into an exit code.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass, field
from typing import Any

from ..incremental.deltas import Delta, format_delta
from ..incremental.session import IncrementalSession, ReverifyResult
from ..pipeline.cache import VerificationCache
from ..pipeline.engine import DEFAULT_CONDITIONS, JobSpec
from ..pipeline.observability import StageMetrics


def shard_of(target: str, workers: int) -> int:
    """Stable shard index for a target name (BLAKE2b, not ``hash()``).

    Python's built-in ``hash`` is randomized per process; a content digest
    keeps the target->worker assignment identical across runs and across
    the service and its tests.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    h = hashlib.blake2b(target.encode("utf-8"), digest_size=4)
    return int.from_bytes(h.digest(), "big") % workers


@dataclass(frozen=True)
class ReverifyJob:
    """One unit of service work: apply ``delta`` to ``target``, re-verify.

    ``delta`` may be ``None`` for a pure re-check of the target's current
    state (a cache-hit probe, or the first touch that forces a baseline).
    """

    job_id: int
    target: str
    delta: Delta | None = None

    def describe(self) -> str:
        d = format_delta(self.delta) if self.delta is not None else "recheck"
        return f"job {self.job_id}: {self.target} <- {d}"


@dataclass(frozen=True)
class JobOutcome:
    """The service's answer for one job."""

    job_id: int
    target: str
    shard: int
    result: ReverifyResult
    #: queue wait + verification, seconds (what a caller would experience)
    latency: float
    #: None = not audited; True/False = full-rebuild audit verdict
    audited: bool | None = None

    @property
    def deadlock_free(self) -> bool:
        return self.result.deadlock_free


@dataclass
class ServiceReport:
    """Aggregate outcome of one service run."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    errors: list[tuple[int, str, str]] = field(default_factory=list)
    clean_shutdown: bool = False
    workers: int = 0
    cache_stats: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        return float(self.cache_stats.get("hit_rate", 0.0))

    @property
    def audited(self) -> int:
        return sum(1 for o in self.outcomes if o.audited is not None)

    @property
    def audit_failures(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if o.audited is False]

    def ok(self, min_hit_rate: float = 0.0) -> bool:
        """Did the run shut down cleanly, audit clean, and hit the cache?"""
        return (
            self.clean_shutdown
            and not self.errors
            and not self.audit_failures
            and self.hit_rate >= min_hit_rate
        )

    def describe(self) -> str:
        lines = [
            f"service: {len(self.outcomes)} jobs on {self.workers} workers "
            f"(clean shutdown: {self.clean_shutdown})",
            f"  cache hit rate {self.hit_rate:.3f} "
            f"({self.cache_stats.get('hits', 0)} hits / "
            f"{self.cache_stats.get('misses', 0)} misses)",
            f"  audited {self.audited} jobs against full rebuilds, "
            f"{len(self.audit_failures)} mismatches",
        ]
        for job_id, target, err in self.errors:
            lines.append(f"  error: job {job_id} ({target}): {err}")
        for o in self.audit_failures:
            lines.append(f"  MISMATCH: job {o.job_id} ({o.target})")
        return "\n".join(lines)


class AuditMismatchError(AssertionError):
    """An incremental verdict diverged from its full-rebuild audit."""


class VerificationService:
    """Sharded asyncio service of incremental re-verification sessions.

    ``specs`` declares the verifiable universe: one
    :class:`~repro.pipeline.engine.JobSpec` per admissible target.  Jobs
    naming an unknown target are reported as errors, never crashes.

    ``verify_sample`` in ``(0, 1]`` audits a deterministic subset of jobs
    (every ``round(1/verify_sample)``-th ``job_id``) against a cold full
    rebuild; a mismatch is recorded on the outcome and fails
    :meth:`ServiceReport.ok` -- the service polices its own equivalence
    contract in production, not only in the test battery.
    """

    def __init__(
        self,
        specs: list[JobSpec],
        *,
        workers: int = 2,
        conditions: tuple[str, ...] | None = None,
        cache: VerificationCache | None = None,
        verify_sample: float = 0.0,
        triage: bool = True,
        metrics: StageMetrics | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if not 0.0 <= verify_sample <= 1.0:
            raise ValueError("verify_sample must be within [0, 1]")
        self.specs = {spec.algorithm: spec for spec in specs}
        self.workers = workers
        self.conditions = tuple(conditions or DEFAULT_CONDITIONS)
        self.cache = cache if cache is not None else VerificationCache(max_entries=256)
        self.verify_sample = verify_sample
        self.triage = triage
        self.metrics = metrics or StageMetrics()
        self._sessions: dict[str, IncrementalSession] = {}

    # ------------------------------------------------------------------
    def _audit_stride(self) -> int:
        if self.verify_sample <= 0.0:
            return 0
        return max(1, round(1.0 / self.verify_sample))

    def _session(self, target: str) -> IncrementalSession:
        """The long-lived session for a target (created on first touch)."""
        session = self._sessions.get(target)
        if session is None:
            spec = self.specs.get(target)
            if spec is None:
                raise KeyError(f"unknown target {target!r}; not in service specs")
            with self.metrics.timer("serve:session_build"):
                session = IncrementalSession(
                    spec=spec,
                    conditions=self.conditions,
                    cache=self.cache,
                    metrics=self.metrics,
                    triage=self.triage,
                )
                session.baseline()
            self._sessions[target] = session
            self.metrics.count("serve:sessions")
        return session

    def _process(self, job: ReverifyJob, enqueued_at: float) -> JobOutcome:
        session = self._session(job.target)
        if job.delta is not None:
            result = session.reverify(job.delta)
        else:
            result = session.check()
        stride = self._audit_stride()
        audited: bool | None = None
        if stride and job.job_id % stride == 0:
            with self.metrics.timer("serve:audit"):
                audited = session.full_check().digest == result.digest
            self.metrics.count("serve:audits")
            if not audited:
                self.metrics.count("serve:audit_mismatches")
        latency = time.perf_counter() - enqueued_at
        self.metrics.observe("serve_latency_seconds", latency)
        self.metrics.count("serve:jobs")
        return JobOutcome(
            job_id=job.job_id,
            target=job.target,
            shard=shard_of(job.target, self.workers),
            result=result,
            latency=latency,
            audited=audited,
        )

    # ------------------------------------------------------------------
    async def _worker(
        self,
        queue: asyncio.Queue[tuple[ReverifyJob, float] | None],
        report: ServiceReport,
    ) -> None:
        while True:
            item = await queue.get()
            try:
                if item is None:
                    return
                job, enqueued_at = item
                try:
                    report.outcomes.append(self._process(job, enqueued_at))
                except Exception as exc:  # noqa: BLE001 - jobs must not kill the worker
                    self.metrics.count("serve:job_errors")
                    report.errors.append((job.job_id, job.target, str(exc)))
                # yield the loop between jobs so shards interleave
                await asyncio.sleep(0)
            finally:
                queue.task_done()

    async def run(self, jobs: list[ReverifyJob]) -> ServiceReport:
        """Process ``jobs`` to completion and shut the workers down."""
        report = ServiceReport(workers=self.workers)
        queues: list[asyncio.Queue[tuple[ReverifyJob, float] | None]] = [
            asyncio.Queue() for _ in range(self.workers)
        ]
        tasks = [
            asyncio.create_task(self._worker(q, report), name=f"serve-worker-{i}")
            for i, q in enumerate(queues)
        ]
        for job in jobs:
            queues[shard_of(job.target, self.workers)].put_nowait(
                (job, time.perf_counter())
            )
        for q in queues:
            q.put_nowait(None)
        done = await asyncio.gather(*tasks, return_exceptions=True)
        report.clean_shutdown = all(r is None for r in done)
        for r in done:
            if isinstance(r, BaseException):
                report.errors.append((-1, "<worker>", repr(r)))
        report.outcomes.sort(key=lambda o: o.job_id)
        report.cache_stats = self.cache.stats()
        report.metrics = self.metrics.snapshot()
        return report

    def run_burst(self, jobs: list[ReverifyJob]) -> ServiceReport:
        """Synchronous wrapper: run one burst of jobs on a fresh event loop."""
        return asyncio.run(self.run(jobs))
