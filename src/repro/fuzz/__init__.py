"""Differential fuzzing: generators, metamorphic oracles, shrinking, corpus.

The subsystem mass-generates random topologies and routing relations,
cross-checks every case through the full verifier/simulator oracle stack
(:mod:`repro.fuzz.oracles`), shrinks each implication violation to a minimal
table-form reproducer (:mod:`repro.fuzz.shrink`), and persists the result as
a replayable corpus entry (:mod:`repro.fuzz.corpus`).  Deliberately broken
checker variants (:mod:`repro.fuzz.planted`) act as negative controls that
prove the oracles can actually catch verifier bugs.

Entry points: ``python -m repro fuzz`` or :func:`run_campaign`.
"""

from .corpus import (
    CorpusEntry,
    ReplayResult,
    load_corpus,
    replay_entry,
    resolve_stack,
    save_entry,
)
from .generators import (
    DEFAULT_FAMILIES,
    FAMILIES,
    CaseSpec,
    build_case,
    case_stream,
    stable_bits,
)
from .oracles import (
    Checker,
    CheckerResult,
    Discrepancy,
    OracleReport,
    OracleStack,
    REAL_STACK,
    check_incremental,
    focus,
    run_stack,
)
from .planted import PLANTED_VARIANTS, planted_stack
from .runner import (
    CaseOutcome,
    FoundDiscrepancy,
    FuzzConfig,
    FuzzReport,
    FuzzRunner,
    ReplayReport,
    fuzz_table,
    replay_corpus,
    replay_table,
    replay_verdict,
    run_campaign,
    run_case,
)
from .shrink import ShrinkResult, discrepancy_predicate, shrink
from .table import TableCase, TableRouting

__all__ = [
    "CaseOutcome",
    "CaseSpec",
    "Checker",
    "CheckerResult",
    "CorpusEntry",
    "DEFAULT_FAMILIES",
    "Discrepancy",
    "FAMILIES",
    "FoundDiscrepancy",
    "FuzzConfig",
    "FuzzReport",
    "FuzzRunner",
    "OracleReport",
    "OracleStack",
    "PLANTED_VARIANTS",
    "REAL_STACK",
    "ReplayReport",
    "ReplayResult",
    "ShrinkResult",
    "TableCase",
    "TableRouting",
    "build_case",
    "case_stream",
    "check_incremental",
    "discrepancy_predicate",
    "focus",
    "fuzz_table",
    "load_corpus",
    "planted_stack",
    "replay_corpus",
    "replay_entry",
    "replay_table",
    "replay_verdict",
    "resolve_stack",
    "run_campaign",
    "run_case",
    "run_stack",
    "save_entry",
    "shrink",
    "stable_bits",
]
