"""The replayable corpus: shrunk reproducers saved as standalone JSON files.

Every discrepancy the fuzzer finds (after shrinking) becomes one file under
``corpus/``: the materialized table, the generator spec it came from, the
oracle stack it fired under, and the discrepancy keys it must reproduce.
Entries are content-addressed -- the filename embeds a digest of the
canonical payload -- so re-finding the same minimal case is idempotent and
corpus files never silently drift.

Replay semantics depend on the stack polarity:

* ``real`` entries are *live bugs*: replaying them must show the
  discrepancy again (that is what makes the file a faithful reproducer),
  and a clean tree should contain none -- CI fails if one fires.
* ``planted:<variant>`` entries are *negative controls*: each must keep
  firing under its broken-checker stack, proving the oracles still have
  teeth after any refactor of the verifiers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .generators import CaseSpec
from .oracles import OracleStack, REAL_STACK, run_stack
from .table import TableCase

FORMAT_VERSION = 1


@dataclass
class CorpusEntry:
    """One shrunk, re-runnable reproducer."""

    stack: str
    table: TableCase
    discrepancy_keys: list[str]
    #: the generator spec the discrepancy was found on (pre-shrink), if any
    spec: CaseSpec | None = None
    note: str = ""

    def payload(self) -> dict[str, Any]:
        return {
            "format": FORMAT_VERSION,
            "stack": self.stack,
            "discrepancy_keys": sorted(self.discrepancy_keys),
            "spec": self.spec.to_json() if self.spec else None,
            "note": self.note,
            "table": self.table.to_json(),
        }

    @property
    def entry_id(self) -> str:
        blob = json.dumps(self.payload(), sort_keys=True).encode()
        return hashlib.blake2b(blob, digest_size=6).hexdigest()

    def filename(self) -> str:
        safe_stack = self.stack.replace(":", "-")
        return f"{safe_stack}-{self.entry_id}.json"

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "CorpusEntry":
        if doc.get("format") != FORMAT_VERSION:
            raise ValueError(f"unsupported corpus format {doc.get('format')!r}")
        return cls(
            stack=str(doc["stack"]),
            table=TableCase.from_json(doc["table"]),
            discrepancy_keys=[str(k) for k in doc["discrepancy_keys"]],
            spec=CaseSpec.from_json(doc["spec"]) if doc.get("spec") else None,
            note=str(doc.get("note", "")),
        )


def save_entry(corpus_dir: str | Path, entry: CorpusEntry) -> Path:
    """Write an entry (idempotent: same minimal case, same file)."""
    directory = Path(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / entry.filename()
    path.write_text(json.dumps(entry.payload(), sort_keys=True, indent=2) + "\n")
    return path


def load_corpus(corpus_dir: str | Path) -> list[tuple[Path, CorpusEntry]]:
    """All entries under ``corpus_dir``, sorted by filename."""
    directory = Path(corpus_dir)
    if not directory.is_dir():
        return []
    out = []
    for path in sorted(directory.glob("*.json")):
        out.append((path, CorpusEntry.from_json(json.loads(path.read_text()))))
    return out


def resolve_stack(name: str) -> OracleStack:
    """Map a recorded stack name back to a runnable stack."""
    if name == "real":
        return REAL_STACK
    if name.startswith("planted:"):
        from .planted import planted_stack

        return planted_stack(name.split(":", 1)[1])
    raise ValueError(f"unknown oracle stack {name!r}")


@dataclass
class ReplayResult:
    """Outcome of replaying one corpus entry."""

    entry: CorpusEntry
    path: Path | None
    #: every recorded discrepancy fired again
    reproduced: bool
    #: two back-to-back runs produced identical discrepancy keys
    deterministic: bool
    observed_keys: list[str] = field(default_factory=list)
    error: str = ""

    @property
    def ok(self) -> bool:
        """Replay is healthy: deterministic, and the bug fires iff it should.

        A ``real`` entry that reproduces is a *live* bug -- the entry is a
        faithful reproducer, but the tree is broken; callers distinguish
        that via :attr:`reproduced` and the stack polarity.  ``ok`` only
        says the file behaves as a corpus entry must: it replays cleanly
        and reproduces its recorded discrepancies.
        """
        return not self.error and self.reproduced and self.deterministic


def replay_entry(entry: CorpusEntry, path: Path | None = None) -> ReplayResult:
    """Re-run an entry's oracle stack on its table, twice."""
    try:
        stack = resolve_stack(entry.stack)
        first = run_stack(entry.table.build(), stack)
        second = run_stack(entry.table.build(), stack)
    except Exception as exc:  # noqa: BLE001 -- a corpus file must never crash replay
        return ReplayResult(entry=entry, path=path, reproduced=False,
                            deterministic=False,
                            error=f"{type(exc).__name__}: {exc}")
    keys1, keys2 = first.discrepancy_keys(), second.discrepancy_keys()
    return ReplayResult(
        entry=entry,
        path=path,
        reproduced=frozenset(entry.discrepancy_keys) <= keys1,
        deterministic=keys1 == keys2,
        observed_keys=sorted(keys1),
    )
