"""The fuzz campaign runner: budgeted case streams, parallel oracle runs,
shrinking, and corpus maintenance.

A campaign is deterministic given its configuration: the case stream is a
pure function of the master seed, each case's oracle verdicts are a pure
function of its spec, and the pool only changes *where* cases run, never
what they compute -- parallel and serial campaigns over the same budget of
cases find identical discrepancies.  (A wall-clock budget naturally covers
a machine-dependent number of cases; for reproducible runs use
``max_cases``.)

Execution mirrors :class:`repro.pipeline.engine.BatchVerifier`: specs are
plain picklable data, chunks go to a ``ProcessPoolExecutor`` when
``workers > 1``, a failed future is retried in-process, and a pool that
cannot start at all degrades to serial execution.  Shrinking and corpus
writes always happen in the parent process, serially, in case order.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..pipeline.observability import StageMetrics
from .corpus import CorpusEntry, ReplayResult, load_corpus, replay_entry, save_entry
from .generators import DEFAULT_FAMILIES, CaseSpec, build_case, case_stream
from .oracles import OracleStack, REAL_STACK, run_stack
from .shrink import discrepancy_predicate, shrink
from .table import TableCase


@dataclass(frozen=True)
class FuzzConfig:
    """One campaign's parameters (all of them; nothing is ambient)."""

    seed: int = 0
    #: stop after this many cases (None = unbounded, budget by time instead)
    max_cases: int | None = 200
    #: stop once this much wall-clock time has elapsed (None = cases only)
    max_seconds: float | None = None
    families: tuple[str, ...] = DEFAULT_FAMILIES
    #: "real" or "planted:<variant>"
    stack: str = "real"
    #: worker processes; 0/1 = deterministic in-process execution
    workers: int = 0
    #: where shrunk reproducers land (None = don't write a corpus)
    corpus_dir: str | None = None
    shrink_budget: int = 600
    #: cases per pool task (amortizes process round-trips)
    chunk: int = 8


@dataclass
class CaseOutcome:
    """One case's oracle outcome -- the picklable unit pool workers return."""

    spec: CaseSpec
    network: str = ""
    algorithm: str = ""
    seconds: float = 0.0
    discrepancy_keys: list[str] = field(default_factory=list)
    checker_errors: list[str] = field(default_factory=list)
    error: str | None = None

    @property
    def clean(self) -> bool:
        return self.error is None and not self.discrepancy_keys


@dataclass
class FoundDiscrepancy:
    """A discrepancy after shrinking, ready for triage."""

    spec: CaseSpec
    keys: list[str]
    shrunk: TableCase
    shrink_evaluations: int
    shrink_minimal: bool
    corpus_path: str | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_json(),
            "keys": self.keys,
            "shrunk": self.shrunk.to_json(),
            "shrink_evaluations": self.shrink_evaluations,
            "shrink_minimal": self.shrink_minimal,
            "corpus_path": self.corpus_path,
        }


@dataclass
class FuzzReport:
    """A whole campaign: outcomes, shrunk discrepancies, observability."""

    config: FuzzConfig
    cases: list[CaseOutcome]
    discrepancies: list[FoundDiscrepancy]
    seconds: float
    metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.discrepancies and not self.case_errors

    @property
    def case_errors(self) -> list[CaseOutcome]:
        return [c for c in self.cases if c.error is not None]


def _resolve_stack(name: str) -> OracleStack:
    from .corpus import resolve_stack

    return resolve_stack(name)


def run_case(spec: CaseSpec, stack: OracleStack) -> CaseOutcome:
    """Run one case in-process; generator crashes become error outcomes."""
    t0 = time.perf_counter()
    out = CaseOutcome(spec=spec)
    try:
        algorithm = build_case(spec)
        out.network = algorithm.network.name
        out.algorithm = algorithm.name
        report = run_stack(algorithm, stack)
        out.discrepancy_keys = sorted(report.discrepancy_keys())
        out.checker_errors = [
            f"{r.checker}: {r.error}" for r in report.results if r.error
        ]
    except Exception as exc:  # noqa: BLE001 -- a broken generator is a finding
        out.error = f"{type(exc).__name__}: {exc}"
    out.seconds = time.perf_counter() - t0
    return out


def _pool_run_chunk(specs: list[CaseSpec], stack_name: str) -> list[CaseOutcome]:
    """Process-pool entry point: rebuild the stack by name, run a chunk."""
    stack = _resolve_stack(stack_name)
    return [run_case(s, stack) for s in specs]


class FuzzRunner:
    """Runs a campaign described by a :class:`FuzzConfig`."""

    def __init__(self, config: FuzzConfig) -> None:
        if config.max_cases is None and config.max_seconds is None:
            raise ValueError("campaign needs a budget: max_cases and/or max_seconds")
        self.config = config
        self.stack = _resolve_stack(config.stack)

    # ------------------------------------------------------------------
    def run(self) -> FuzzReport:
        cfg = self.config
        metrics = StageMetrics()
        t0 = time.perf_counter()
        outcomes: list[CaseOutcome] = []
        pool: ProcessPoolExecutor | None = None
        if cfg.workers > 1:
            try:
                pool = ProcessPoolExecutor(max_workers=cfg.workers)
            except OSError:  # sandboxed / fork-restricted host: degrade to serial
                pool = None
        try:
            with metrics.timer("cases"):
                for chunk in self._chunks(t0):
                    outcomes.extend(self._run_chunk(pool, chunk))
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        for oc in outcomes:
            metrics.count(f"family:{oc.spec.family}", 1)
            if oc.error is not None:
                metrics.count("case_errors", 1)
            if oc.checker_errors:
                metrics.count("checker_errors", len(oc.checker_errors))
        found: list[FoundDiscrepancy] = []
        with metrics.timer("shrink"):
            for oc in outcomes:
                if oc.error is None and oc.discrepancy_keys:
                    metrics.count("discrepancies", 1)
                    found.append(self._shrink_and_save(oc, metrics))
        return FuzzReport(
            config=cfg,
            cases=outcomes,
            discrepancies=found,
            seconds=time.perf_counter() - t0,
            metrics=metrics.snapshot(),
        )

    # ------------------------------------------------------------------
    def _chunks(self, t0: float):
        """Yield spec chunks until the case or time budget runs out."""
        cfg = self.config
        stream = case_stream(cfg.seed, cfg.families)
        produced = 0
        while True:
            if cfg.max_seconds is not None and time.perf_counter() - t0 >= cfg.max_seconds:
                return
            chunk: list[CaseSpec] = []
            while len(chunk) < max(cfg.chunk, 1):
                if cfg.max_cases is not None and produced >= cfg.max_cases:
                    break
                chunk.append(next(stream))
                produced += 1
            if not chunk:
                return
            yield chunk

    def _run_chunk(
        self, pool: ProcessPoolExecutor | None, specs: list[CaseSpec]
    ) -> list[CaseOutcome]:
        if pool is None:
            return [run_case(s, self.stack) for s in specs]
        try:
            return pool.submit(_pool_run_chunk, specs, self.config.stack).result()
        except Exception:  # worker death / transport failure: retry in-process
            return [run_case(s, self.stack) for s in specs]

    def _shrink_and_save(self, oc: CaseOutcome, metrics: StageMetrics) -> FoundDiscrepancy:
        algorithm = build_case(oc.spec)
        case = TableCase.materialize(algorithm)
        keys = list(oc.discrepancy_keys)
        try:
            result = shrink(
                case,
                discrepancy_predicate(keys, self.stack),
                max_evaluations=self.config.shrink_budget,
            )
            shrunk, evals, minimal = result.case, result.evaluations, result.minimal
        except ValueError:
            # The discrepancy did not re-fire on the materialized table
            # (a generator/table mismatch worth keeping visible): ship the
            # unshrunk table so the case is still reproducible.
            metrics.count("shrink_did_not_refire", 1)
            shrunk, evals, minimal = case, 0, False
        metrics.count("shrink_evaluations", evals)
        found = FoundDiscrepancy(
            spec=oc.spec, keys=keys, shrunk=shrunk,
            shrink_evaluations=evals, shrink_minimal=minimal,
        )
        if self.config.corpus_dir is not None:
            entry = CorpusEntry(
                stack=self.config.stack,
                table=shrunk,
                discrepancy_keys=keys,
                spec=oc.spec,
                note=f"found by fuzz campaign seed={self.config.seed}",
            )
            found.corpus_path = str(save_entry(self.config.corpus_dir, entry))
            metrics.count("corpus_entries", 1)
        return found


def run_campaign(config: FuzzConfig) -> FuzzReport:
    """One-call campaign: ``run_campaign(cfg)`` == CLI ``python -m repro fuzz``."""
    return FuzzRunner(config).run()


# ----------------------------------------------------------------------
# corpus replay
# ----------------------------------------------------------------------
@dataclass
class ReplayReport:
    """Outcome of replaying a whole corpus directory."""

    results: list[ReplayResult]
    seconds: float

    @property
    def failures(self) -> list[tuple[ReplayResult, str]]:
        """(result, why) for every entry CI should fail on."""
        out = []
        for r in self.results:
            ok, why = replay_verdict(r)
            if not ok:
                out.append((r, why))
        return out

    @property
    def ok(self) -> bool:
        return not self.failures


def replay_verdict(result: ReplayResult) -> tuple[bool, str]:
    """CI semantics for one replayed entry (polarity-aware).

    * any replay error or nondeterminism fails;
    * ``planted:*`` entries must reproduce -- they prove the oracles still
      catch the injected checker bug;
    * ``real`` entries must NOT reproduce -- one that still fires is a live
      verifier bug (the entry exists to keep the reproducer, not the bug).
    """
    if result.error:
        return False, f"replay error: {result.error}"
    if not result.deterministic:
        return False, "nondeterministic replay: two runs produced different discrepancies"
    planted = result.entry.stack.startswith("planted:")
    if planted and not result.reproduced:
        return False, (
            "planted-bug reproducer no longer fires: the oracle stack lost "
            f"its teeth for {result.entry.stack}"
        )
    if not planted and result.reproduced:
        return False, "reproducer still fires on the real stack: live verifier bug"
    return True, ""


def replay_corpus(corpus_dir: str | Path) -> ReplayReport:
    """Replay every corpus entry under ``corpus_dir``."""
    t0 = time.perf_counter()
    results = [replay_entry(entry, path) for path, entry in load_corpus(corpus_dir)]
    return ReplayReport(results=results, seconds=time.perf_counter() - t0)


# ----------------------------------------------------------------------
# report rendering (CLI)
# ----------------------------------------------------------------------
def fuzz_table(report: FuzzReport) -> str:
    """Human-readable campaign summary."""
    cfg = report.config
    lines = [
        f"fuzz campaign: seed={cfg.seed} stack={cfg.stack} "
        f"cases={len(report.cases)} time={report.seconds:.1f}s "
        f"workers={max(cfg.workers, 1)}",
    ]
    counters = report.metrics.get("counters", {})
    fams = {k.split(":", 1)[1]: v for k, v in counters.items() if k.startswith("family:")}
    if fams:
        lines.append("  cases by family: "
                     + ", ".join(f"{k}={v}" for k, v in sorted(fams.items())))
    errs = report.case_errors
    if errs:
        lines.append(f"  case errors: {len(errs)}")
        for oc in errs[:5]:
            lines.append(f"    {oc.spec.key()}: {oc.error}")
    if not report.discrepancies:
        lines.append("  discrepancies: none")
        return "\n".join(lines)
    lines.append(f"  discrepancies: {len(report.discrepancies)}")
    for d in report.discrepancies:
        size = d.shrunk.size()
        lines.append(
            f"    {d.spec.key()}: {', '.join(d.keys)} -> shrunk to "
            f"{size[0]} channels / {size[1]} nodes / {size[2]} entries "
            f"({d.shrink_evaluations} evals"
            + ("" if d.shrink_minimal else ", budget exhausted")
            + (f") -> {d.corpus_path}" if d.corpus_path else ")")
        )
    return "\n".join(lines)


def replay_table(report: ReplayReport) -> str:
    """Human-readable corpus replay summary."""
    lines = [f"corpus replay: {len(report.results)} entries in {report.seconds:.1f}s"]
    for r in report.results:
        name = r.path.name if r.path else r.entry.filename()
        ok, why = replay_verdict(r)
        status = "ok" if ok else "FAIL"
        detail = why if why else (
            "reproduced" if r.reproduced else "quiet (as expected)"
        )
        lines.append(f"  [{status}] {name}: {detail}")
    return "\n".join(lines)
