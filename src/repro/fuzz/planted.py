"""Deliberately broken checker variants: the fuzz oracle's negative controls.

A differential fuzzer that never fires might be healthy -- or toothless.
These planted bugs decide which: each variant re-runs a real checker with a
known theory error injected, and the acceptance test demands the oracle
stack catches it within a fixed seed budget and shrinks the discrepancy to
a tiny reproducer.  Corpus entries produced this way are kept (tagged with
the stack name) as permanent regression tests that the oracles still have
teeth.

Variants
--------
``cwg-immediate``
    Builds the CWG from *immediate* waiting sets only (``dt.wait`` instead
    of ``dt.downstream_wait``), ignoring the Definition 9 note that a
    message of arbitrary length can occupy ``c1`` while waiting arbitrarily
    far downstream.  The broken graph is missing wait edges, so the theorem
    checker wrongly certifies relations whose deadlocks involve multi-hop
    holds -- exactly what SPECIFIC-policy random relations exercise.
    (ANY-policy verdicts are no longer fooled: Theorem 3's blocked-chain
    and configuration searches read the transition cache, not the
    dependency graph, so this variant's teeth are specific-waiting cases.)
``duato-no-indirect``
    Builds the ECDG without INDIRECT / INDIRECT_CROSS dependencies -- the
    mistake Duato's paper exists to correct (adaptive excursions off the
    escape layer create escape-to-escape dependencies a direct-only graph
    misses).  Duato applicability (coherent, minimal-path ``R(n,d)``) makes
    this one hard to trip generatively; it is pinned by unit tests showing
    it is observably weaker than the real builder, and by a shipped corpus
    control -- a coherent line-with-chords table whose planted escape cycle
    is made of indirect dependencies only, where this variant claims
    freedom while the theorem checker and the simulator prove deadlock.
``incremental-stale-scc``
    Runs the incremental-vs-full oracle with the session's dirty-frontier
    expansion disabled (``stale_scc=True``): link faults and repairs no
    longer invalidate the destinations whose recorded footprints touched
    the channel, so the session keeps answering from stale transition
    tables and dependency graphs.  The oracle's full-rebuild comparison
    must catch the divergence -- proving the campaign would fire on a real
    invalidation bug in the incremental engine.
``existence-ignore-scc``
    Replaces the existence checker's obstruction detection with a per-edge
    scope: each forced-precedence constraint is inspected in isolation
    (only degenerate self-cycles ``b < b`` can refute), never the strongly
    connected components of the constraint digraph -- where every real
    obstruction lives (the unidirectional ring's is a 3-cycle of
    constraints with no self-loop).  On non-orderable networks the broken
    decider therefore claims YES, backs the claim with an unverified
    channel order, and the synthesized witness relation comes out
    unroutable for at least one pair -- the theorem checker rejects it and
    the ``existence-divergence`` self-check fires.  The teeth are the
    YES-side of the metamorphic rule: a bogus existence claim cannot
    survive witness certification.
"""

from __future__ import annotations

from ..core.cwg import ChannelWaitingGraph
from ..core.depgraph import DepGraph
from ..core.transitions import TransitionCache
from ..deps.ecdg import DependencyType, ExtendedChannelDependencyGraph, _TYPE_BIT
from ..routing.relation import RoutingAlgorithm
from ..verify.duato import search_escape
from ..verify.necsuf import theorem2, theorem3
from .oracles import (
    BOUNDS,
    Checker,
    CheckerResult,
    OracleStack,
    REAL_CHECKERS,
    result_from_verdict,
)


class ImmediateWaitCWG(ChannelWaitingGraph):
    """CWG built from immediate waiting sets only (planted bug).

    Drops every edge that needs the "arbitrary message length" note under
    Definition 9: ``(c1, c2)`` where ``c2`` is waited on not at ``c1``'s
    head but somewhere downstream while the message still occupies ``c1``.
    """

    kind = "CWG[immediate-wait]"

    def __init__(self, algorithm: RoutingAlgorithm, *,
                 transitions: TransitionCache | None = None) -> None:
        self.algorithm = algorithm
        self.transitions = transitions or TransitionCache(algorithm)
        self.dep = DepGraph(
            algorithm.network,
            self.transitions.collect_edge_dests(lambda dt: dt.wait_masks),
        )
        self._edge_dests = None


class NoIndirectECDG(ExtendedChannelDependencyGraph):
    """ECDG without indirect dependencies (planted bug)."""

    kind = "ECDG[no-indirect]"

    def _build(self) -> DepGraph:
        full = super()._build()
        keep = (1 << _TYPE_BIT[DependencyType.DIRECT]) | (
            1 << _TYPE_BIT[DependencyType.DIRECT_CROSS])
        edges = {(u, v): m & keep for u, v, m in full.iter_edges() if m & keep}
        return DepGraph(self.algorithm.network, edges)


# ----------------------------------------------------------------------
# broken checkers
# ----------------------------------------------------------------------
def _broken_theorem(algorithm: RoutingAlgorithm):
    """The paper's condition, fed the immediate-wait CWG."""
    from ..routing.relation import WaitPolicy

    cwg = ImmediateWaitCWG(algorithm)
    if algorithm.wait_policy is WaitPolicy.SPECIFIC:
        verdict = theorem2(algorithm, cwg=cwg, **BOUNDS)
    else:
        verdict = theorem3(algorithm, cwg=cwg, **BOUNDS)
    return result_from_verdict(
        "theorem", verdict,
        claims_deadlock=not verdict.deadlock_free and verdict.necessary_and_sufficient,
    )


def _broken_duato(algorithm: RoutingAlgorithm) -> CheckerResult:
    verdict = search_escape(algorithm, ecdg_cls=NoIndirectECDG)
    return result_from_verdict("duato", verdict, claims_deadlock=False)


def _broken_incremental(algorithm: RoutingAlgorithm) -> CheckerResult:
    from .oracles import check_incremental

    return check_incremental(algorithm, stale_scc=True)


def _decide_ignore_scc(network):
    """Existence decision with the obstruction scope broken to per-edge.

    The correct pipeline runs first; only its NO verdicts -- the ones that
    needed a constraint *cycle* or the exhaustive search -- are re-decided
    with the per-edge scope.  A surviving self-loop constraint still
    refutes; otherwise the variant declares YES on the strength of an
    unverified cid-order schedule, which is exactly the bug: absence of a
    single-edge obstruction is not absence of an obstruction.
    """
    from dataclasses import replace

    from ..verify.existence import decide_existence, forced_cycle

    verdict = decide_existence(network)
    if verdict.exists is not False:
        return verdict
    obstruction = forced_cycle(network, per_edge=True)
    if obstruction is not None:
        return replace(verdict, method="per-edge", obstruction=obstruction)
    return replace(
        verdict,
        exists=True,
        method="per-edge",
        schedule=tuple(c.cid for c in network.link_channels),
        obstruction=None,
        reason="no per-edge forced-precedence obstruction (broken scope)",
    )


def _broken_existence(algorithm: RoutingAlgorithm) -> CheckerResult:
    from .oracles import check_existence

    return check_existence(algorithm, decide=_decide_ignore_scc)


_REPLACEMENTS: dict[str, Checker] = {
    "cwg-immediate": Checker("theorem", _broken_theorem),
    "duato-no-indirect": Checker("duato", _broken_duato),
    "incremental-stale-scc": Checker("incremental", _broken_incremental),
    "existence-ignore-scc": Checker("existence", _broken_existence),
}

PLANTED_VARIANTS = tuple(_REPLACEMENTS)


def planted_stack(variant: str) -> OracleStack:
    """The real oracle stack with one checker replaced by a broken variant."""
    try:
        replacement = _REPLACEMENTS[variant]
    except KeyError:
        raise ValueError(
            f"unknown planted variant {variant!r}; have {sorted(PLANTED_VARIANTS)}"
        ) from None
    checkers = tuple(replacement if c.name == replacement.name else c
                     for c in REAL_CHECKERS)
    return OracleStack(f"planted:{variant}", checkers)
