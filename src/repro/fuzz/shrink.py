"""Delta-debugging shrinker: reduce a discrepancy to a minimal reproducer.

Given a :class:`~repro.fuzz.table.TableCase` on which an oracle discrepancy
fires, the shrinker greedily applies reduction passes -- remove a node,
remove a channel, drop a relation entry, thin a route set -- keeping a
candidate only when the *same* discrepancy (identified by its
:meth:`~repro.fuzz.oracles.Discrepancy.key`) still fires on the reduced
case.  Candidates that break case validity (a disconnected network, a
relation the checkers crash on) are simply rejected: the predicate wraps
the whole oracle run and treats any exception as "discrepancy gone".

The passes run cheapest-structure-first (nodes, then channels, then table
entries, then individual route-set channels) and loop to a fixpoint, so the
result is 1-minimal with respect to the pass vocabulary: no single node,
channel, entry, or route-set element can be removed without losing the bug.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from .oracles import OracleStack, REAL_STACK, focus, run_stack
from .table import TableCase

Predicate = Callable[[TableCase], bool]

#: checkers named by a key "kind:free<>dead" -- both must keep claiming
def _checkers_of(key: str) -> set[str]:
    _, _, pair = key.partition(":")
    a, _, b = pair.partition("<>")
    return {a, b}


@dataclass
class ShrinkResult:
    """Outcome of a shrink run."""

    case: TableCase
    #: predicate evaluations spent (accepted + rejected candidates)
    evaluations: int
    #: passes looped to a fixpoint within budget (result is 1-minimal)
    minimal: bool

    @property
    def num_channels(self) -> int:
        return len(self.case.channels)


def discrepancy_predicate(
    keys: Iterable[str],
    stack: OracleStack = REAL_STACK,
) -> Predicate:
    """True iff every discrepancy in ``keys`` still fires on the case."""
    wanted = frozenset(keys)
    if not wanted:
        raise ValueError("predicate needs at least one discrepancy key to preserve")
    involved: set[str] = set()
    for key in wanted:
        involved |= _checkers_of(key)
    # Only the checkers the discrepancy names need to re-run per candidate;
    # the key set is unchanged and the uninvolved checkers cost nothing.
    # theorem-enum only runs for SPECIFIC-waiting cases, so it may be absent
    # from the stack's checker list in spirit but it is always *registered*.
    focused = focus(stack, involved)

    def predicate(case: TableCase) -> bool:
        try:
            report = run_stack(case.build(), focused)
        except Exception:  # noqa: BLE001 -- invalid candidate, not an error
            return False
        return wanted <= report.discrepancy_keys()

    return predicate


def shrink(
    case: TableCase,
    predicate: Predicate,
    *,
    max_evaluations: int = 600,
) -> ShrinkResult:
    """Greedily minimize ``case`` while ``predicate`` holds.

    ``predicate(case)`` must already be True; the returned case satisfies it
    too.  ``max_evaluations`` bounds total oracle runs -- if the budget runs
    out mid-pass the best case so far is returned with ``minimal=False``.
    """
    if not predicate(case):
        raise ValueError("shrink() requires the discrepancy to fire on the initial case")
    spent = 1

    def attempt(candidate: TableCase) -> bool:
        nonlocal spent
        if spent >= max_evaluations:
            return False
        spent += 1
        return predicate(candidate)

    changed = True
    exhausted = False
    while changed and not exhausted:
        changed = False
        for reducer in (_pass_nodes, _pass_channels, _pass_entries, _pass_thin):
            case, progressed, exhausted = reducer(case, attempt,
                                                  lambda: spent >= max_evaluations)
            changed = changed or progressed
            if exhausted:
                break
    return ShrinkResult(case=case, evaluations=spent, minimal=not exhausted)


def _greedy(case: TableCase, attempt, out_of_budget, candidates_of):
    """Run one pass to its own fixpoint.

    ``candidates_of(case)`` yields reduced candidates for the *current*
    case; after an acceptance the candidate list is regenerated (edits
    renumber nodes/channels, so stale indices would be wrong).
    """
    progressed = False
    accepted = True
    while accepted:
        accepted = False
        for candidate in candidates_of(case):
            if out_of_budget():
                return case, progressed, True
            if attempt(candidate):
                case = candidate
                progressed = accepted = True
                break
    return case, progressed, False


def _pass_nodes(case, attempt, out_of_budget):
    return _greedy(case, attempt, out_of_budget, lambda c: (
        c.remove_node(n) for n in range(c.num_nodes - 1, -1, -1) if c.num_nodes > 2
    ))


def _pass_channels(case, attempt, out_of_budget):
    return _greedy(case, attempt, out_of_budget, lambda c: (
        c.remove_channel(i) for i in range(len(c.channels) - 1, -1, -1)
    ))


def _pass_entries(case, attempt, out_of_budget):
    return _greedy(case, attempt, out_of_budget, lambda c: (
        c.drop_entry(k) for k in sorted(c.routes)
    ))


def _pass_thin(case, attempt, out_of_budget):
    def candidates(c: TableCase):
        for key in sorted(c.routes):
            if len(c.routes[key]) > 1:
                for ci in c.routes[key]:
                    yield c.thin_entry(key, ci)
    return _greedy(case, attempt, out_of_budget, candidates)
