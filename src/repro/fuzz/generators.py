"""Seeded case generators: random networks and random routing relations.

Differential fuzzing needs a stream of *reproducible* cases: everything a
generator decides is a pure function of an integer seed pushed through a
keyed hash (:func:`stable_bits`), never of global RNG state, so any case can
be rebuilt bit-for-bit from its :class:`CaseSpec` -- in a worker process, in
a failing-test report, or years later from a corpus file.

Families
--------
``irregular``
    Small strongly connected multigraphs (directed ring + extra links, 1-3
    virtual channels per physical link) routed by a seeded minimal relation.
``faulty-mesh`` / ``faulty-torus`` / ``faulty-hypercube``
    Regular topologies with randomly deleted link channels (strong
    connectivity preserved by construction), routed by the same seeded
    minimal relation -- it is distance-based, so it adapts to the faults
    (connected by construction) where the catalog algorithms would not.
``mutated-catalog``
    A cataloged algorithm on its small standard topology with a seeded
    mutation of its routing/waiting tables (route sets thinned, waiting
    sets re-picked).  Mutants land on both sides of every verdict.
``arbitrary``
    A completely arbitrary relation of the paper's general form
    ``R : C x N x N -> P(C)``: a seeded nonempty subset of the output
    channels per (input channel, node, destination) state, minimal or not,
    connected or not.
``escape-wild``
    Dimension-order routing on VC class 0 plus a seeded *nonminimal* "wild"
    layer on VC class 1 of a small mesh -- the shape for which Duato-style
    escape-channel analysis needs indirect dependencies.
``adaptive-3d``
    A small 3D mesh -- dense, or pillar-sparse with a seeded kept-column
    subset -- built through the scenario layer's :class:`TopologySpec`
    codec and routed by the table-driven minimal-adaptive 3D relation
    (escape on VC 0).  A seeded fraction of cases mutates the tables, so
    the family lands on both sides of the escape-subfunction verdicts.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from typing import Any

from ..routing.adaptive3d import MinimalAdaptive3D
from ..routing.catalog import CATALOG, make
from ..routing.relation import NodeDestRouting, RoutingAlgorithm, WaitPolicy
from ..scenario import TopologySpec
from ..topology import build_hypercube, build_mesh, build_torus
from ..topology.channel import Channel
from ..topology.network import Network


def stable_bits(seed: int, *parts) -> int:
    """32 deterministic bits keyed on ``seed`` and the given parts."""
    text = "/".join(str(p) for p in (seed, *parts))
    return int.from_bytes(hashlib.blake2b(text.encode(), digest_size=4).digest(), "big")


def _pick(seed: int, options: Sequence, *parts):
    """Deterministic choice from ``options`` keyed on ``(seed, *parts)``."""
    return options[stable_bits(seed, "pick", *parts) % len(options)]


def _subset(seed: int, items: Sequence, *parts, keep_probability_num: int = 1,
            keep_probability_den: int = 2) -> list:
    """Seeded subset of ``items`` (possibly empty); order preserved."""
    th = keep_probability_num * 2**32 // keep_probability_den
    return [x for i, x in enumerate(items) if stable_bits(seed, "sub", i, *parts) < th]


def _nonempty_subset(seed: int, items: Sequence, *parts) -> list:
    """Seeded nonempty subset of ``items``; falls back to everything."""
    kept = _subset(seed, items, *parts)
    return kept or list(items)


# ----------------------------------------------------------------------
# case specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CaseSpec:
    """One fuzz case: a family name plus the seed every decision hangs off.

    Plain picklable/JSON-able data -- the process pool and the corpus store
    specs, never live networks or relations.
    """

    family: str
    seed: int

    def key(self) -> str:
        return f"{self.family}:{self.seed}"

    def to_json(self) -> dict[str, Any]:
        return {"family": self.family, "seed": self.seed}

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "CaseSpec":
        return cls(family=str(doc["family"]), seed=int(doc["seed"]))


def case_stream(master_seed: int, families: Sequence[str] | None = None,
                start: int = 0) -> Iterator[CaseSpec]:
    """Infinite deterministic stream of case specs, round-robin by family."""
    fams = tuple(families or DEFAULT_FAMILIES)
    unknown = [f for f in fams if f not in FAMILIES]
    if unknown:
        raise ValueError(f"unknown fuzz families {unknown}; have {sorted(FAMILIES)}")
    i = start
    while True:
        yield CaseSpec(fams[i % len(fams)], stable_bits(master_seed, "case", i))
        i += 1


def build_case(spec: CaseSpec) -> RoutingAlgorithm:
    """Rebuild a case's routing algorithm (and network) from its spec."""
    try:
        builder = FAMILIES[spec.family]
    except KeyError:
        raise ValueError(f"unknown fuzz family {spec.family!r}; have {sorted(FAMILIES)}") from None
    return builder(spec.seed)


# ----------------------------------------------------------------------
# networks
# ----------------------------------------------------------------------
def build_random_network(
    num_nodes: int,
    extra_links: tuple[tuple[int, int], ...],
    vc_seed: int,
) -> Network:
    """A strongly connected multigraph: a directed ring plus extra links.

    The ring ``0 -> 1 -> ... -> 0`` guarantees Definition 1's strong
    connectivity for any extra-link set; each physical link carries 1-3
    virtual channels chosen by ``vc_seed``.
    """
    net = Network(f"rand({num_nodes}n,{len(extra_links)}x,{vc_seed})")
    net.add_nodes(num_nodes)
    links = {(i, (i + 1) % num_nodes) for i in range(num_nodes)}
    links |= {(a % num_nodes, b % num_nodes) for a, b in extra_links
              if a % num_nodes != b % num_nodes}
    for a, b in sorted(links):
        net.add_link_channels(a, b, 1 + stable_bits(vc_seed, a, b) % 3)
    return net.freeze()


def _strongly_connected_without(net: Network, removed: set[int]) -> bool:
    """Is the link graph still strongly connected with ``removed`` cids gone?"""
    n = net.num_nodes
    for backward in (False, True):
        seen = [False] * n
        seen[0] = True
        stack = [0]
        while stack:
            u = stack.pop()
            for c in (net.in_channels(u) if backward else net.out_channels(u)):
                if c.cid in removed:
                    continue
                v = c.src if backward else c.dst
                if not seen[v]:
                    seen[v] = True
                    stack.append(v)
        if not all(seen):
            return False
    return True


def delete_channels(net: Network, cids: set[int], *, name: str | None = None) -> Network:
    """Copy ``net`` without the link channels in ``cids`` (a faulty variant).

    Coordinates and channel/network metadata are carried over; injection and
    ejection channels are re-created by ``freeze()``.  Raises
    :class:`~repro.topology.network.NetworkError` if the survivors are not
    strongly connected.
    """
    out = Network(name or f"{net.name}-faulty{len(cids)}")
    out.add_nodes(net.num_nodes)
    out.coords = dict(net.coords)
    out.meta = dict(net.meta)
    for c in net.link_channels:
        if c.cid in cids:
            continue
        out.add_channel(c.src, c.dst, vc=c.vc, label=c.label, **dict(c.meta))
    return out.freeze()


def faulty_variant(net: Network, seed: int, *, max_deletions: int = 2) -> Network:
    """Delete up to ``max_deletions`` seeded link channels, keeping Definition 1.

    Candidate channels are tried in a seeded order; a deletion is kept only
    if the remaining link graph stays strongly connected, so every emitted
    network is a valid (if degraded) interconnection network.
    """
    removed: set[int] = set()
    order = sorted(net.link_channels,
                   key=lambda c: stable_bits(seed, "fault", c.cid))
    for c in order:
        if len(removed) >= max_deletions:
            break
        trial = removed | {c.cid}
        if _strongly_connected_without(net, trial):
            removed = trial
    return delete_channels(net, removed, name=f"{net.name}-f{seed % 1000}({len(removed)}d)")


# ----------------------------------------------------------------------
# routing relations
# ----------------------------------------------------------------------
class RandomMinimalRouting(NodeDestRouting):
    """Seeded minimal routing relation on an arbitrary network.

    The route set at ``(node, dest)`` is a seeded nonempty subset of the
    outgoing channels that strictly decrease BFS distance to ``dest`` --
    connected by construction (every node short of the destination always
    offers at least one minimal channel on a strongly connected network).
    Under :attr:`WaitPolicy.SPECIFIC` the waiting channel is a seeded
    single pick from the route set; under :attr:`WaitPolicy.ANY` the whole
    route set.  Nothing guarantees deadlock freedom -- 1-VC rings routinely
    produce True Cycles -- which is the point: verdicts land on both sides.
    """

    name = "random-minimal"

    def __init__(self, network: Network, seed: int,
                 wait_policy: WaitPolicy = WaitPolicy.ANY) -> None:
        super().__init__(network)
        self.seed = seed
        self.wait_policy = wait_policy
        self.name = f"random-minimal#{seed}-{wait_policy.value}"
        self._dist = network.shortest_distances()

    def route_nd(self, node: int, dest: int):
        if node == dest:
            return frozenset()
        d = self._dist[node][dest]
        minimal = sorted(
            (c for c in self.network.out_channels(node)
             if self._dist[c.dst][dest] == d - 1),
            key=lambda c: c.cid,
        )
        keep = [c for c in minimal if stable_bits(self.seed, node, dest, c.cid) & 1]
        return frozenset(keep or minimal)

    def waiting_channels(self, c_in, node: int, dest: int):
        permitted = sorted(self.route_nd(node, dest), key=lambda c: c.cid)
        if not permitted:
            return frozenset()
        if self.wait_policy is WaitPolicy.SPECIFIC:
            pick = stable_bits(self.seed, node, dest, "wait") % len(permitted)
            return frozenset([permitted[pick]])
        return frozenset(permitted)


class ArbitraryRouting(RoutingAlgorithm):
    """An arbitrary relation of the paper's general form ``R(c_in, n, d)``.

    Every routing state gets a seeded nonempty subset of the node's output
    channels (minimality, coherence, and even connectivity are *not*
    guaranteed), and a waiting set that is a seeded nonempty subset of the
    route set.  This is the relation class only the CWG condition covers.
    """

    form = "CND"
    name = "arbitrary"

    def __init__(self, network: Network, seed: int,
                 wait_policy: WaitPolicy = WaitPolicy.ANY) -> None:
        super().__init__(network)
        self.seed = seed
        self.wait_policy = wait_policy
        self.name = f"arbitrary#{seed}-{wait_policy.value}"

    def _state_key(self, c_in: Channel) -> int:
        # All injection inputs at a node share one key so the relation stays
        # well-defined for any entry channel the simulator presents.
        return c_in.cid if c_in.is_link else -1 - c_in.src

    def route(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        out = sorted(self.network.out_channels(node), key=lambda c: c.cid)
        key = self._state_key(c_in)
        return frozenset(_nonempty_subset(self.seed, out, "route", key, dest))

    def waiting_channels(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        permitted = sorted(self.route(c_in, node, dest), key=lambda c: c.cid)
        if not permitted:
            return frozenset()
        key = self._state_key(c_in)
        if self.wait_policy is WaitPolicy.SPECIFIC:
            pick = stable_bits(self.seed, "wait", key, dest) % len(permitted)
            return frozenset([permitted[pick]])
        return frozenset(_nonempty_subset(self.seed, permitted, "waitset", key, dest))


class MutatedRouting(RoutingAlgorithm):
    """A seeded mutation of an existing algorithm's routing/waiting tables.

    Mutation is keyed on ``(node, dest)`` only, so an ND-form inner relation
    stays ND-form (and Duato-applicable when it was).  Route sets are
    thinned (each channel dropped with probability 1/4, never to empty);
    waiting sets are the surviving inner waits, re-picked when mutation
    emptied them.  The mutant may or may not preserve deadlock freedom --
    that is what the oracles decide.
    """

    def __init__(self, inner: RoutingAlgorithm, seed: int) -> None:
        super().__init__(inner.network)
        self.inner = inner
        self.seed = seed
        self.form = inner.form
        self.wait_policy = inner.wait_policy
        self.name = f"{inner.name}~mut{seed}"

    def _kept(self, node: int, dest: int) -> frozenset[Channel]:
        base = sorted(self.inner.route(self.network.injection_channel(node), node, dest),
                      key=lambda c: c.cid)
        kept = [c for c in base
                if stable_bits(self.seed, "keep", node, dest, c.cid) % 4 != 0]
        return frozenset(kept or base)

    def route(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        full = self.inner.route(c_in, node, dest)
        if self.form == "ND":
            return self._kept(node, dest)
        kept = full & self._kept(node, dest) if full else frozenset()
        return kept or full

    def waiting_channels(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        permitted = self.route(c_in, node, dest)
        if not permitted:
            return frozenset()
        waits = self.inner.waiting_channels(c_in, node, dest) & permitted
        if waits:
            return waits
        ordered = sorted(permitted, key=lambda c: c.cid)
        pick = stable_bits(self.seed, "rewait", node, dest) % len(ordered)
        return frozenset([ordered[pick]])


class EscapeWildRouting(NodeDestRouting):
    """Dimension-order escape on VC 0 plus a seeded wild layer on VC 1.

    The wild layer is destination-independent: at each node a seeded subset
    of the VC-1 output channels is always permitted, minimal or not.  The
    escape hop is always offered too, so the relation provides a minimal
    path for every pair; nonminimal wild excursions while holding escape
    channels are exactly what creates *indirect* escape-to-escape
    dependencies (and, for unlucky seeds, reachable deadlocks).
    """

    name = "escape-wild"

    def __init__(self, network: Network, seed: int) -> None:
        super().__init__(network)
        self.seed = seed
        self.name = f"escape-wild#{seed}"
        self.wait_policy = WaitPolicy.ANY
        dims = network.meta.get("dims")
        if not dims:
            raise ValueError("escape-wild requires a mesh with dims metadata")
        self.dims = dims
        self._wild: dict[int, frozenset[Channel]] = {}
        for n in network.nodes:
            vc1 = sorted((c for c in network.out_channels(n) if c.vc == 1),
                         key=lambda c: c.cid)
            self._wild[n] = frozenset(_subset(seed, vc1, "wild", n))

    def _escape_hop(self, node: int, dest: int) -> Channel:
        """The XY (lowest-dimension-first) hop on VC 0."""
        here = self.network.coord(node)
        there = self.network.coord(dest)
        for dim, (a, b) in enumerate(zip(here, there)):
            if a == b:
                continue
            step = 1 if b > a else -1
            nxt = list(here)
            nxt[dim] = a + step
            target = self.network.node_at(tuple(nxt))
            for c in self.network.out_channels(node):
                if c.dst == target and c.vc == 0:
                    return c
        raise AssertionError("unreachable: node == dest handled by caller")

    def route_nd(self, node: int, dest: int):
        if node == dest:
            return frozenset()
        return frozenset({self._escape_hop(node, dest)} | self._wild[node])


# ----------------------------------------------------------------------
# family builders
# ----------------------------------------------------------------------
def _seeded_policy(seed: int, *parts) -> WaitPolicy:
    return WaitPolicy.SPECIFIC if stable_bits(seed, "policy", *parts) & 1 else WaitPolicy.ANY


def _family_irregular(seed: int) -> RoutingAlgorithm:
    n = 2 + stable_bits(seed, "n") % 4                      # 2-5 nodes
    extra = tuple(
        (stable_bits(seed, "ea", i) % n, stable_bits(seed, "eb", i) % n)
        for i in range(stable_bits(seed, "ne") % 5)          # 0-4 extra links
    )
    net = build_random_network(n, extra, stable_bits(seed, "vc"))
    return RandomMinimalRouting(net, stable_bits(seed, "r"), _seeded_policy(seed))


_FAULTY_MESH_DIMS = ((2, 2), (3, 2), (3, 3), (4, 2))
_FAULTY_TORUS_DIMS = ((3,), (4,), (5,), (3, 3))


def _family_faulty_mesh(seed: int) -> RoutingAlgorithm:
    dims = _pick(seed, _FAULTY_MESH_DIMS, "dims")
    vcs = 1 + stable_bits(seed, "vcs") % 2
    net = faulty_variant(build_mesh(dims, num_vcs=vcs), seed)
    return RandomMinimalRouting(net, stable_bits(seed, "r"), _seeded_policy(seed))


def _family_faulty_torus(seed: int) -> RoutingAlgorithm:
    dims = _pick(seed, _FAULTY_TORUS_DIMS, "dims")
    vcs = 1 + stable_bits(seed, "vcs") % 2
    net = faulty_variant(build_torus(dims, num_vcs=vcs), seed)
    return RandomMinimalRouting(net, stable_bits(seed, "r"), _seeded_policy(seed))


def _family_faulty_hypercube(seed: int) -> RoutingAlgorithm:
    dim = 2 + stable_bits(seed, "dim") % 2                  # 2- or 3-cube
    net = faulty_variant(build_hypercube(dim, num_vcs=1), seed)
    return RandomMinimalRouting(net, stable_bits(seed, "r"), _seeded_policy(seed))


#: the catalog slice the mutation family draws from: small instances, both
#: safe and unsafe parents, every waiting regime.  Topologies are scenario
#: spec strings (VC count resolves per parent from the registry entry).
_MUTATION_PARENTS: tuple[tuple[str, str], ...] = (
    ("e-cube-mesh", "mesh:3x3"),
    ("west-first", "mesh:3x3"),
    ("north-last", "mesh:2x3"),
    ("negative-first", "mesh:3x3"),
    ("highest-positive-last", "mesh:2x3"),
    ("duato-mesh", "mesh:2x3"),
    ("unrestricted-minimal", "mesh:2x3"),
    ("e-cube", "hypercube:3"),
    ("li-hypercube", "hypercube:3"),
)


def _family_mutated_catalog(seed: int) -> RoutingAlgorithm:
    name, topo = _pick(seed, _MUTATION_PARENTS, "parent")
    entry = CATALOG[name]
    net = TopologySpec.parse(topo).with_vcs(entry.min_vcs).build()
    return MutatedRouting(make(name, net), stable_bits(seed, "mut"))


def _family_arbitrary(seed: int) -> RoutingAlgorithm:
    n = 3 + stable_bits(seed, "n") % 2                      # 3-4 nodes
    extra = tuple(
        (stable_bits(seed, "ea", i) % n, stable_bits(seed, "eb", i) % n)
        for i in range(stable_bits(seed, "ne") % 4)
    )
    net = build_random_network(n, extra, stable_bits(seed, "vc"))
    return ArbitraryRouting(net, stable_bits(seed, "r"), _seeded_policy(seed))


_WILD_MESH_DIMS = ((2, 2), (3, 2), (2, 3))


def _family_escape_wild(seed: int) -> RoutingAlgorithm:
    dims = _pick(seed, _WILD_MESH_DIMS, "dims")
    net = build_mesh(dims, num_vcs=2)
    return EscapeWildRouting(net, stable_bits(seed, "wild"))


_MESH3D_DIMS = ((2, 2, 2), (3, 2, 2), (2, 3, 2), (2, 2, 3))


def _family_adaptive_3d(seed: int) -> RoutingAlgorithm:
    """A 3D scenario-layer case: dense or pillar-sparse, real or mutated."""
    dims = _pick(seed, _MESH3D_DIMS, "dims")
    side = "x".join(map(str, dims))
    spec = f"mesh3d:{side}:v2"
    if stable_bits(seed, "sparse") & 1:
        columns = [(x, y) for x in range(dims[0]) for y in range(dims[1])]
        kept = _nonempty_subset(seed, columns, "pillars")
        joined = "+".join(f"{x}.{y}" for x, y in kept)
        spec = f"sparse-pillar:{side}:v2:pillars={joined}"
    base = MinimalAdaptive3D(TopologySpec.parse(spec).build())
    if stable_bits(seed, "mutate") % 3 == 0:
        return MutatedRouting(base, stable_bits(seed, "mut3d"))
    return base


FAMILIES = {
    "irregular": _family_irregular,
    "faulty-mesh": _family_faulty_mesh,
    "faulty-torus": _family_faulty_torus,
    "faulty-hypercube": _family_faulty_hypercube,
    "mutated-catalog": _family_mutated_catalog,
    "arbitrary": _family_arbitrary,
    "escape-wild": _family_escape_wild,
    "adaptive-3d": _family_adaptive_3d,
}

DEFAULT_FAMILIES = tuple(FAMILIES)
