"""Materialized routing tables: the shrinkable, replayable case form.

A fuzz case starts life as a ``(family, seed)`` spec, but the shrinker and
the corpus need something they can *edit*: delete a channel, drop a relation
entry, thin a route set.  :class:`TableCase` is that form -- the network as
an explicit channel list and the routing relation as an explicit table,
plain JSON-able data with no reference to the generator that produced it.

Channel identity is positional: ``channels[i]`` becomes the link channel
with ``cid == i`` when the case is rebuilt (link channels are added in list
order before ``freeze()`` appends injection/ejection channels), so table
keys can name channels by index and survive serialization.

Table keys (``->`` separates state from destination):

* ``"n{node}->{dest}"`` -- ND-form relations, one entry per (node, dest);
* ``"c{idx}->{dest}"`` -- CND-form, input = link channel ``idx``;
* ``"i{node}->{dest}"`` -- CND-form, input = the injection channel at ``node``.

A missing key means the empty route set, which the verifiers read as "not
wait-connected" -- the shrinker relies on that to delete entries without
inventing new topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..routing.relation import RoutingAlgorithm, WaitPolicy
from ..topology.channel import Channel
from ..topology.network import Network


def _key_nd(node: int, dest: int) -> str:
    return f"n{node}->{dest}"


def _key_cnd(c_in: Channel, dest: int) -> str:
    if c_in.is_link:
        return f"c{c_in.cid}->{dest}"
    return f"i{c_in.src}->{dest}"


@dataclass
class TableCase:
    """An editable, serializable materialization of one fuzz case."""

    name: str
    num_nodes: int
    #: ``channels[i] = (src, dst, vc)``; list position is the channel id
    channels: list[tuple[int, int, int]]
    #: relation form: True for R(n, d), False for R(c_in, n, d)
    nd: bool
    wait_policy: str
    #: table key -> permitted channel indices (sorted)
    routes: dict[str, list[int]]
    #: table key -> waiting channel indices (subset of routes[key])
    waits: dict[str, list[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # capture / rebuild
    # ------------------------------------------------------------------
    @classmethod
    def materialize(cls, algorithm: RoutingAlgorithm) -> "TableCase":
        """Snapshot an algorithm's full reachable table.

        Requires the network's link channels to carry dense ids
        ``0..L-1`` (true for every repo topology builder and for
        :func:`delete_channels` rebuilds, which renumber).
        """
        net = algorithm.network
        links = net.link_channels
        for i, c in enumerate(links):
            if c.cid != i:
                raise ValueError(
                    f"cannot materialize {net.name}: link channel ids are not dense "
                    f"(channel {c!r} at position {i})"
                )
        nd = algorithm.form == "ND"
        routes: dict[str, list[int]] = {}
        waits: dict[str, list[int]] = {}

        # Walk only *reachable* routing states (the state space the
        # verifiers and the simulator touch): relations may legitimately
        # refuse -- or even raise on -- queries for states no message can
        # reach, and those states cannot affect any verdict.
        from ..core.transitions import TransitionCache

        for dt in TransitionCache(algorithm).all_destinations():
            for c_in, out in dt.succ.items():
                if not out:
                    continue
                node = c_in.dst
                key = _key_nd(node, dt.dest) if nd else _key_cnd(c_in, dt.dest)
                routes[key] = sorted(c.cid for c in out)
                waits[key] = sorted(c.cid for c in dt.wait[c_in])
        return cls(
            name=f"table[{algorithm.name}]",
            num_nodes=net.num_nodes,
            channels=[(c.src, c.dst, c.vc) for c in links],
            nd=nd,
            wait_policy=algorithm.wait_policy.value,
            routes=routes,
            waits=waits,
        )

    def build(self) -> "TableRouting":
        """Rebuild the network and relation; raises if the channel list no
        longer forms a strongly connected network (shrinker candidates that
        disconnect the topology die here)."""
        net = Network(self.name)
        net.add_nodes(self.num_nodes)
        for src, dst, vc in self.channels:
            net.add_channel(src, dst, vc=vc)
        return TableRouting(net.freeze(), self)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "num_nodes": self.num_nodes,
            "channels": [list(c) for c in self.channels],
            "nd": self.nd,
            "wait_policy": self.wait_policy,
            "routes": self.routes,
            "waits": self.waits,
        }

    @classmethod
    def from_json(cls, doc: dict[str, Any]) -> "TableCase":
        return cls(
            name=str(doc["name"]),
            num_nodes=int(doc["num_nodes"]),
            channels=[tuple(int(x) for x in c) for c in doc["channels"]],
            nd=bool(doc["nd"]),
            wait_policy=str(doc["wait_policy"]),
            routes={k: [int(i) for i in v] for k, v in doc["routes"].items()},
            waits={k: [int(i) for i in v] for k, v in doc["waits"].items()},
        )

    # ------------------------------------------------------------------
    # edits (all return new cases; the shrinker never mutates in place)
    # ------------------------------------------------------------------
    def remove_channel(self, idx: int) -> "TableCase":
        """Delete channel ``idx``; later channels shift down one id."""
        remap = {i: (i if i < idx else i - 1)
                 for i in range(len(self.channels)) if i != idx}

        def fix_key(key: str) -> str | None:
            if key.startswith("c"):
                cid, _, dest = key[1:].partition("->")
                old = int(cid)
                if old == idx:
                    return None  # the input channel itself is gone
                return f"c{remap[old]}->{dest}"
            return key

        routes: dict[str, list[int]] = {}
        waits: dict[str, list[int]] = {}
        for key, chans in self.routes.items():
            nk = fix_key(key)
            if nk is None:
                continue
            kept = [remap[c] for c in chans if c != idx]
            if not kept:
                continue
            routes[nk] = kept
            w = [remap[c] for c in self.waits.get(key, []) if c != idx]
            waits[nk] = w or kept[:1]
        return TableCase(
            name=self.name,
            num_nodes=self.num_nodes,
            channels=[c for i, c in enumerate(self.channels) if i != idx],
            nd=self.nd,
            wait_policy=self.wait_policy,
            routes=routes,
            waits=waits,
        )

    def remove_node(self, node: int) -> "TableCase":
        """Delete a node, its channels, and every entry touching it."""
        node_map = {n: (n if n < node else n - 1)
                    for n in range(self.num_nodes) if n != node}
        keep_ch = [i for i, (s, d, _) in enumerate(self.channels)
                   if s != node and d != node]
        ch_map = {old: new for new, old in enumerate(keep_ch)}

        def fix_key(key: str) -> str | None:
            head, _, dest = key.partition("->")
            d = int(dest)
            if d == node:
                return None
            tag, val = head[0], int(head[1:])
            if tag == "c":
                if val not in ch_map:
                    return None
                return f"c{ch_map[val]}->{node_map[d]}"
            if val == node:
                return None
            return f"{tag}{node_map[val]}->{node_map[d]}"

        routes: dict[str, list[int]] = {}
        waits: dict[str, list[int]] = {}
        for key, chans in self.routes.items():
            nk = fix_key(key)
            if nk is None:
                continue
            kept = [ch_map[c] for c in chans if c in ch_map]
            if not kept:
                continue
            routes[nk] = kept
            w = [ch_map[c] for c in self.waits.get(key, []) if c in ch_map]
            waits[nk] = w or kept[:1]
        return TableCase(
            name=self.name,
            num_nodes=self.num_nodes - 1,
            channels=[(node_map[s], node_map[d], vc)
                      for i, (s, d, vc) in enumerate(self.channels) if i in ch_map],
            nd=self.nd,
            wait_policy=self.wait_policy,
            routes=routes,
            waits=waits,
        )

    def drop_entry(self, key: str) -> "TableCase":
        routes = {k: v for k, v in self.routes.items() if k != key}
        waits = {k: v for k, v in self.waits.items() if k != key}
        return TableCase(self.name, self.num_nodes, list(self.channels),
                         self.nd, self.wait_policy, routes, waits)

    def thin_entry(self, key: str, channel_idx: int) -> "TableCase":
        """Remove one channel from one route set (and its waiting set)."""
        kept = [c for c in self.routes[key] if c != channel_idx]
        routes = dict(self.routes)
        waits = dict(self.waits)
        if not kept:
            routes.pop(key)
            waits.pop(key, None)
        else:
            routes[key] = kept
            w = [c for c in self.waits.get(key, []) if c != channel_idx]
            waits[key] = w or kept[:1]
        return TableCase(self.name, self.num_nodes, list(self.channels),
                         self.nd, self.wait_policy, routes, waits)

    # ------------------------------------------------------------------
    def size(self) -> tuple[int, int, int]:
        """(channels, nodes, table entries) -- the shrinker's cost order."""
        return (len(self.channels), self.num_nodes, len(self.routes))

    def describe(self) -> str:
        ch = ", ".join(f"c{i}:{s}->{d}/vc{vc}"
                       for i, (s, d, vc) in enumerate(self.channels))
        lines = [
            f"{self.name}: {self.num_nodes} nodes, {len(self.channels)} channels, "
            f"{len(self.routes)} table entries, wait={self.wait_policy}",
            f"  channels: {ch}",
        ]
        for key in sorted(self.routes):
            r = ",".join(f"c{c}" for c in self.routes[key])
            w = ",".join(f"c{c}" for c in self.waits.get(key, []))
            lines.append(f"  {key}: route {{{r}}} wait {{{w}}}")
        return "\n".join(lines)


class TableRouting(RoutingAlgorithm):
    """A routing relation driven entirely by a :class:`TableCase`."""

    def __init__(self, network: Network, case: TableCase) -> None:
        super().__init__(network)
        self.case = case
        self.name = case.name
        self.form = "ND" if case.nd else "CND"
        self.wait_policy = WaitPolicy(case.wait_policy)

    def _key(self, c_in: Channel, node: int, dest: int) -> str:
        if self.case.nd:
            return _key_nd(node, dest)
        return _key_cnd(c_in, dest)

    def _lookup(self, table: dict[str, list[int]], c_in: Channel,
                node: int, dest: int) -> frozenset[Channel]:
        if node == dest:
            return frozenset()
        cids = table.get(self._key(c_in, node, dest))
        if not cids:
            return frozenset()
        channel = self.network.channel
        return frozenset(channel(c) for c in cids)

    def route(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        return self._lookup(self.case.routes, c_in, node, dest)

    def waiting_channels(self, c_in: Channel, node: int, dest: int) -> frozenset[Channel]:
        waits = self._lookup(self.case.waits, c_in, node, dest)
        return waits or self.route(c_in, node, dest)
