"""The metamorphic oracle stack: independent deciders with implication rules.

Every fuzz case runs through four independent deciders, and their verdicts
are not compared for equality -- the checkers answer different questions --
but for *implication violations*.  Each checker result is reduced to at most
two claims:

* **proof of freedom** -- a sound sufficient condition certified the
  relation (an acyclic-graph certificate or an authoritative "no True
  Cycles" theorem verdict);
* **proof of deadlock** -- an authoritative refutation: a theorem verdict
  with ``necessary_and_sufficient=True`` (a reachable Definition 12
  configuration was constructed), or the simulator actually deadlocking.

The metamorphic invariant is that the two claim sets can never both be
nonempty.  Checkers that merely *fail to certify* (Duato with no certifying
escape among the candidates, Dally--Seitz on a cyclic CDG, a theorem run
that exhausted its budget) claim nothing.

Implication table (checker -> what its verdict may claim):

=====================  ==============  ==================================
checker                free claim      deadlock claim
=====================  ==============  ==================================
theorem (Thm 1/2/3)    deadlock_free   refuted with n&s=True
theorem-enum (Thm 2)   deadlock_free   refuted with n&s=True
duato (ECDG search)    deadlock_free   never (search is incomplete)
dally-seitz (CDG)      deadlock_free   never (necessity unsound for
                                       waiting-channel regimes: Figure 4)
sim (adversarial)      never           deadlock detector fired
incremental            never           never (self-checking: see below)
existence              never           authoritative NO: *no* relation on
                                       this network is deadlock-free, so
                                       the generated one isn't either
=====================  ==============  ==================================

The ``incremental`` checker is metamorphic in a different sense: it claims
nothing about deadlock freedom, but re-verifies the case through an
incremental session after a battery of deltas and compares each verdict
digest against a cold full rebuild.  Any difference is reported as an
``incremental-divergence`` discrepancy -- the two paths compute the same
question, so agreement is an invariant, not an implication.

The ``existence`` checker decides a *network-level* question -- does any
deadlock-free relation exist on this channel digraph at all
(:mod:`repro.verify.existence`)?  Both answers are metamorphic teeth.  An
authoritative NO claims deadlock for the generated relation (whatever it
is), so any checker certifying freedom trips the ordinary
``free-vs-deadlock`` rule.  A YES must be *realizable*: the checker
synthesizes the witness relation from its ordering certificate and runs
the theorem checker over it; a rejected witness is reported as an
``existence-divergence`` discrepancy -- self-checking, like the
incremental oracle.  An UNDETERMINED verdict claims nothing.

One extra cross-check rides along: for SPECIFIC-waiting relations the
enumerate-then-classify Theorem 2 and the segment-chain-search Theorem 2
are two implementations of the same decision procedure, so two
authoritative verdicts must agree exactly.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any, Callable

from ..analyze.screens import triage, triage_verdict
from ..routing.relation import RoutingAlgorithm, WaitPolicy
from ..sim import BernoulliTraffic, SimConfig, WormholeSimulator
from ..verify.dally_seitz import dally_seitz
from ..verify.duato import search_escape
from ..verify.necsuf import theorem2, verify
from ..verify.report import Verdict

#: search budgets shared with tests/test_differential_oracles.py
BOUNDS = dict(cycle_limit=2_000, max_nodes=100_000)
#: the adversarial simulator configuration of the differential test suite
ADVERSARIAL = dict(buffer_depth=1, deadlock_check_interval=16)


@dataclass
class CheckerResult:
    """One checker's verdict reduced to its metamorphic claims."""

    checker: str
    condition: str
    #: the raw boolean answer, None if the checker errored
    deadlock_free: bool | None
    #: verdict carried an "iff" guarantee (authoritative either way)
    authoritative: bool
    claims_free: bool
    claims_deadlock: bool
    detail: str = ""
    error: str | None = None
    #: set when a self-checking oracle (the incremental checker) caught its
    #: two computation paths disagreeing -- a discrepancy in itself, without
    #: reference to any other checker's claims
    divergence: str | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "checker": self.checker,
            "condition": self.condition,
            "deadlock_free": self.deadlock_free,
            "authoritative": self.authoritative,
            "claims_free": self.claims_free,
            "claims_deadlock": self.claims_deadlock,
            "detail": self.detail,
            "error": self.error,
            "divergence": self.divergence,
        }


def result_from_verdict(checker: str, verdict: Verdict, *, claims_deadlock: bool) -> CheckerResult:
    """Reduce a :class:`Verdict` to its claims; freedom claims are implicit."""
    return CheckerResult(
        checker=checker,
        condition=verdict.condition,
        deadlock_free=verdict.deadlock_free,
        authoritative=verdict.necessary_and_sufficient,
        claims_free=verdict.deadlock_free,
        claims_deadlock=claims_deadlock,
        detail=verdict.reason,
    )


def _errored(checker: str, exc: BaseException) -> CheckerResult:
    return CheckerResult(
        checker=checker, condition="error", deadlock_free=None,
        authoritative=False, claims_free=False, claims_deadlock=False,
        error=f"{type(exc).__name__}: {exc}",
    )


# ----------------------------------------------------------------------
# the checkers
# ----------------------------------------------------------------------
def check_theorem(algorithm: RoutingAlgorithm) -> CheckerResult:
    """The paper's condition (Theorem 2 or 3 by wait policy)."""
    verdict = verify(algorithm, **BOUNDS)
    return result_from_verdict(
        "theorem", verdict,
        claims_deadlock=not verdict.deadlock_free and verdict.necessary_and_sufficient,
    )


def check_theorem_enumerated(algorithm: RoutingAlgorithm) -> CheckerResult | None:
    """Enumerate-then-classify Theorem 2; only defined for SPECIFIC waiting."""
    if algorithm.wait_policy is not WaitPolicy.SPECIFIC:
        return None
    verdict = theorem2(algorithm, enumerate_cycles=True, cycle_limit=BOUNDS["cycle_limit"])
    return result_from_verdict(
        "theorem-enum", verdict,
        claims_deadlock=not verdict.deadlock_free and verdict.necessary_and_sufficient,
    )


def check_triage(algorithm: RoutingAlgorithm) -> CheckerResult:
    """The repro.analyze triage screens.  A decided triage synthesizes the
    theorem checker's verdict (same claim discipline); ``needs-full-check``
    claims nothing.  Its contract -- ``definitely-X`` never contradicts the
    theorem -- is exactly what the implication rules then enforce."""
    tri = triage(algorithm)
    if not tri.decided:
        return CheckerResult(
            checker="triage", condition="triage screens", deadlock_free=None,
            authoritative=False, claims_free=False, claims_deadlock=False,
            detail=tri.summary(),
        )
    verdict = triage_verdict(algorithm, tri)
    return result_from_verdict(
        "triage", verdict,
        claims_deadlock=not verdict.deadlock_free and verdict.necessary_and_sufficient,
    )


def check_duato(algorithm: RoutingAlgorithm) -> CheckerResult:
    """Duato's ECDG condition over the natural escape candidates."""
    verdict = search_escape(algorithm)
    return result_from_verdict("duato", verdict, claims_deadlock=False)


def check_dally_seitz(algorithm: RoutingAlgorithm) -> CheckerResult:
    """The acyclic-CDG condition.  Certificates only: the paper's Figure 4
    shows a cyclic CDG does not prove deadlock once waiting channels enter
    the model, so a refutation here claims nothing."""
    verdict = dally_seitz(algorithm)
    return result_from_verdict("dally-seitz", verdict, claims_deadlock=False)


def check_simulator(algorithm: RoutingAlgorithm) -> CheckerResult:
    """Adversarial flit-level runs: an actual deadlock is ground truth."""
    deadlock = None
    runs = 0
    for seed, rate, pattern in ((3, 0.7, "uniform"), (11, 0.6, "hotspot")):
        runs += 1
        sim = WormholeSimulator(
            algorithm,
            BernoulliTraffic(algorithm.network, rate=rate, pattern=pattern,
                             length=6, stop_at=600),
            SimConfig(seed=seed, **ADVERSARIAL),
        )
        sim.run(1_000)
        if sim.deadlock is not None:
            deadlock = sim.deadlock
            break
    detail = (f"deadlock detected: {deadlock.describe()}" if deadlock
              else f"no deadlock across {runs} adversarial runs")
    return CheckerResult(
        checker="sim", condition="simulator", deadlock_free=deadlock is None,
        authoritative=False, claims_free=False,
        claims_deadlock=deadlock is not None, detail=detail,
    )


def check_incremental(algorithm: RoutingAlgorithm, *, stale_scc: bool = False) -> CheckerResult:
    """Metamorphic incremental-vs-full oracle over a small delta battery.

    Wraps the case in an :class:`~repro.incremental.session.IncrementalSession`,
    applies the session's default fault pair and table edit (skipping
    whichever the relation cannot express), and after every step compares
    the incremental verdict digest against a cold full rebuild.  Any
    difference is a ``divergence`` -- an implication-free discrepancy in its
    own right, since the two paths compute the *same* question.
    """
    from ..incremental.deltas import format_delta
    from ..incremental.session import (
        IncrementalSession,
        default_fault_pair,
        default_table_edit,
    )

    session = IncrementalSession(algorithm, stale_scc=stale_scc)
    deltas: list[Any] = [None]
    try:
        down, up = default_fault_pair(session)
        deltas += [down, up]
    except ValueError:
        pass
    try:
        edit, revert = default_table_edit(session)
        deltas += [edit, revert]
    except ValueError:
        pass
    divergence = None
    deadlock_free = None
    compared = 0
    for delta in deltas:
        result = session.check() if delta is None else session.reverify(delta)
        deadlock_free = result.deadlock_free
        full = session.full_check()
        compared += 1
        if full.digest != result.digest:
            step = format_delta(delta) if delta is not None else "baseline"
            divergence = (f"after {step}: incremental digest {result.digest[:12]} "
                          f"!= full-rebuild digest {full.digest[:12]}")
            break
    detail = divergence or f"{compared} incremental verdicts matched full rebuilds"
    return CheckerResult(
        checker="incremental", condition="incremental-equivalence",
        deadlock_free=deadlock_free, authoritative=False,
        claims_free=False, claims_deadlock=False,
        detail=detail, divergence=divergence,
    )


def check_existence(
    algorithm: RoutingAlgorithm,
    *,
    decide: Callable[[Any], Any] | None = None,
) -> CheckerResult:
    """Network-level existence oracle (:mod:`repro.verify.existence`).

    ``decide`` overrides the decision procedure -- the planted
    ``existence-ignore-scc`` variant swaps in its per-edge decider here,
    exactly as ``check_incremental`` takes ``stale_scc``.  A YES verdict is
    never passed through on faith: the witness relation synthesized from
    the ordering certificate must survive the theorem checker, else the
    result carries a ``divergence``.
    """
    from ..verify.existence import decide_existence, synthesize_witness

    net = algorithm.network
    verdict = (decide or decide_existence)(net)
    divergence = None
    detail = verdict.describe()
    if verdict.exists is True and verdict.schedule is not None:
        witness = synthesize_witness(net, verdict.schedule)
        wv = verify(witness.algorithm, **BOUNDS)
        if not wv.deadlock_free:
            divergence = (
                f"existence certifies a deadlock-free relation exists "
                f"(method {verdict.method}) but the theorem checker rejects the "
                f"synthesized {witness.kind} witness: {wv.reason}"
            )
        else:
            detail += f"; {witness.kind} witness certified by the theorem checker"
    claims_deadlock = verdict.exists is False and verdict.authoritative
    return CheckerResult(
        checker="existence", condition="existence (channel ordering)",
        # the raw answer concerns the network, not this relation: only an
        # authoritative NO decides the given relation (nothing is free there)
        deadlock_free=False if claims_deadlock else None,
        authoritative=verdict.authoritative,
        claims_free=False, claims_deadlock=claims_deadlock,
        detail=detail, divergence=divergence,
    )


@dataclass(frozen=True)
class Checker:
    """A named oracle: callable(algorithm) -> CheckerResult | None."""

    name: str
    run: Callable[[RoutingAlgorithm], CheckerResult | None]


REAL_CHECKERS: tuple[Checker, ...] = (
    Checker("theorem", check_theorem),
    Checker("theorem-enum", check_theorem_enumerated),
    Checker("triage", check_triage),
    Checker("duato", check_duato),
    Checker("dally-seitz", check_dally_seitz),
    Checker("sim", check_simulator),
    Checker("incremental", check_incremental),
    Checker("existence", check_existence),
)


@dataclass(frozen=True)
class OracleStack:
    """A named set of checkers run together over each case."""

    name: str
    checkers: tuple[Checker, ...] = REAL_CHECKERS


REAL_STACK = OracleStack("real")


def focus(stack: OracleStack, checker_names: Iterable[str]) -> OracleStack:
    """A sub-stack running only the named checkers (same stack name).

    The shrinker uses this to re-evaluate candidates against just the two
    checkers a discrepancy involves: the discrepancy key is unchanged, and
    the uninvolved (often expensive) checkers stop dominating shrink time.
    """
    wanted = set(checker_names)
    kept = tuple(c for c in stack.checkers if c.name in wanted)
    missing = wanted - {c.name for c in kept}
    if missing:
        raise ValueError(f"stack {stack.name!r} has no checker(s) {sorted(missing)}")
    return OracleStack(stack.name, kept)


# ----------------------------------------------------------------------
# running a stack
# ----------------------------------------------------------------------
@dataclass
class Discrepancy:
    """A violated implication between two checkers on one case."""

    kind: str          # "free-vs-deadlock" | "authoritative-disagreement"
                       # | "<checker>-divergence" (self-checking oracles)
    free_checker: str
    deadlock_checker: str
    detail: str = ""

    def key(self) -> str:
        """Identity used by the shrinker's "same bug persists" predicate."""
        return f"{self.kind}:{self.free_checker}<>{self.deadlock_checker}"

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "free_checker": self.free_checker,
            "deadlock_checker": self.deadlock_checker,
            "detail": self.detail,
        }


@dataclass
class OracleReport:
    """All checker results for one case plus the derived discrepancies."""

    stack: str
    results: list[CheckerResult] = field(default_factory=list)
    discrepancies: list[Discrepancy] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.discrepancies

    def result(self, checker: str) -> CheckerResult | None:
        for r in self.results:
            if r.checker == checker:
                return r
        return None

    def discrepancy_keys(self) -> frozenset[str]:
        return frozenset(d.key() for d in self.discrepancies)

    def to_json(self) -> dict[str, Any]:
        return {
            "stack": self.stack,
            "results": [r.to_json() for r in self.results],
            "discrepancies": [d.to_json() for d in self.discrepancies],
        }


def run_stack(algorithm: RoutingAlgorithm, stack: OracleStack = REAL_STACK) -> OracleReport:
    """Run every checker of ``stack`` and derive implication violations.

    Checker exceptions are captured as errored results (claiming nothing):
    a crash in one decider must not hide what the others would have found,
    and crash-prone corner cases surface in the campaign's error counters.
    """
    report = OracleReport(stack=stack.name)
    for checker in stack.checkers:
        try:
            result = checker.run(algorithm)
        except Exception as exc:  # noqa: BLE001 -- any checker crash is data
            result = _errored(checker.name, exc)
        if result is not None:
            report.results.append(result)

    # Self-checking oracles carry their own discrepancy: two computation
    # paths inside one checker answered the same question differently (the
    # incremental digest comparison, the existence witness certification).
    # The kind is derived per checker; "incremental-divergence" is kept
    # verbatim so committed corpus discrepancy keys stay stable.
    for r in report.results:
        if r.divergence:
            report.discrepancies.append(Discrepancy(
                kind=f"{r.checker}-divergence",
                free_checker=r.checker,
                deadlock_checker=r.checker,
                detail=r.divergence,
            ))

    free = [r for r in report.results if r.claims_free]
    dead = [r for r in report.results if r.claims_deadlock]
    for f in free:
        for d in dead:
            report.discrepancies.append(Discrepancy(
                kind="free-vs-deadlock",
                free_checker=f.checker,
                deadlock_checker=d.checker,
                detail=f"{f.checker} proves freedom ({f.detail}) but "
                       f"{d.checker} proves deadlock ({d.detail})",
            ))

    # Metamorphic cross-checks between authoritative deciders of the *same*
    # condition, which must agree exactly (these also fire when both refute
    # but one is wrong about *which* way, which the claim rules above miss):
    # the two Theorem 2 implementations, and the triage screens against the
    # theorem checker whose early paths they hoist.
    for a_name, b_name, what in (
        ("theorem", "theorem-enum", "search-based and enumerated Theorem 2"),
        ("theorem", "triage", "the theorem checker and the triage screens"),
    ):
        a, b = report.result(a_name), report.result(b_name)
        if (
            a is not None and b is not None
            and a.authoritative and b.authoritative
            and a.deadlock_free is not None and b.deadlock_free is not None
            and a.deadlock_free != b.deadlock_free
        ):
            f, d = (a, b) if a.deadlock_free else (b, a)
            already = {(x.free_checker, x.deadlock_checker) for x in report.discrepancies}
            if (f.checker, d.checker) not in already:
                report.discrepancies.append(Discrepancy(
                    kind="authoritative-disagreement",
                    free_checker=f.checker,
                    deadlock_checker=d.checker,
                    detail=f"{what} disagree: "
                           f"{f.checker} says free ({f.detail}); {d.checker} refutes ({d.detail})",
                ))
    return report
