"""Adaptiveness and path-diversity metrics (Figure 5 and friends)."""

from .adaptiveness import (
    average_degree,
    duato_path_count,
    duato_ratio,
    ecube_ratio,
    efa_path_count,
    efa_ratio,
    empirical_degree,
    empirical_pair_ratio,
    figure5_series,
    total_virtual_paths,
)
from .paths import (
    max_edge_disjoint_minimal_paths,
    minimal_path_matrix,
    physical_path_coverage,
)

__all__ = [
    "average_degree",
    "duato_path_count",
    "duato_ratio",
    "ecube_ratio",
    "efa_path_count",
    "efa_ratio",
    "empirical_degree",
    "empirical_pair_ratio",
    "figure5_series",
    "max_edge_disjoint_minimal_paths",
    "minimal_path_matrix",
    "physical_path_coverage",
    "total_virtual_paths",
]
