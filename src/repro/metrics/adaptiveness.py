"""Degree of adaptiveness (Glass & Ni), exactly -- the paper's Figure 5.

The degree of adaptiveness of a routing algorithm is "the ratio of the
number of paths permitted by the routing algorithm to the total number of
paths, averaged over all source-destination pairs" (Section 9.3).  Paths are
counted in the algorithm's own virtual network: a source-destination pair at
Hamming distance ``k`` on a hypercube has ``k!`` minimal physical paths and
``k! * V^k`` minimal virtual paths with ``V`` virtual channels per link.

Exact per-distance path counts:

* **e-cube** (1 VC): one permitted path, so the ratio at distance ``k`` is
  ``1/k!`` -- "nonadaptive routing can use half the paths when the distance
  between the source and destination is two hops".
* **Duato's fully adaptive** (2 VCs): the first-class channel is usable only
  in the lowest remaining dimension, the second class anywhere, giving the
  recurrence ``f(j) = (j + 1) f(j - 1)``, i.e. ``f(k) = (k + 1)!`` permitted
  virtual paths and ratio ``(k + 1)/2^k``.
* **EFA** (2 VCs): the first class opens up entirely whenever the lowest
  remaining dimension needs a *negative* hop, so the count depends on the
  pattern of hop directions; :func:`efa_path_count` computes it by dynamic
  programming over sign strings, and the per-distance ratio averages over
  all ``2^k`` equally likely patterns.

Every closed form is cross-checked in the test suite against brute-force
enumeration of the actual routing relations on small cubes.
"""

from __future__ import annotations

from functools import lru_cache
from math import comb, factorial

from ..routing.paths import enumerate_paths
from ..routing.relation import RoutingAlgorithm

Sign = str  # '+' or '-'


# ----------------------------------------------------------------------
# exact per-distance counts
# ----------------------------------------------------------------------
def total_virtual_paths(k: int, vcs: int) -> int:
    """Minimal virtual paths between hypercube nodes at distance ``k``."""
    return factorial(k) * vcs**k


def ecube_ratio(k: int) -> float:
    """e-cube's degree of adaptiveness at distance ``k``: 1/k!."""
    return 1.0 / factorial(k)


def duato_path_count(k: int) -> int:
    """Permitted virtual paths of Duato's fully adaptive algorithm: (k+1)!."""
    return factorial(k + 1)


def duato_ratio(k: int) -> float:
    """(k+1)! / (k! 2^k) = (k+1)/2^k."""
    return (k + 1) / 2.0**k


@lru_cache(maxsize=None)
def efa_path_count(signs: tuple[Sign, ...]) -> int:
    """Permitted EFA virtual paths for a given direction pattern.

    ``signs[i]`` is the hop direction of the i-th lowest dimension still to
    correct ('-' = negative).  Recurrence over which dimension is corrected
    next: the second VC of any needed dimension always counts (weight 1);
    the first VC additionally counts (weight +1) iff the lowest remaining
    dimension needs a negative hop, or the corrected dimension *is* the
    lowest.
    """
    if not signs:
        return 1
    low_negative = signs[0] == "-"
    total = 0
    for i in range(len(signs)):
        weight = 2 if (low_negative or i == 0) else 1
        total += weight * efa_path_count(signs[:i] + signs[i + 1:])
    return total


def efa_ratio(k: int) -> float:
    """EFA's degree of adaptiveness at distance ``k``, averaged over patterns."""
    if k == 0:
        return 1.0
    total = 0
    for bits in range(1 << k):
        signs = tuple("-" if (bits >> i) & 1 else "+" for i in range(k))
        total += efa_path_count(signs)
    return total / (2**k * total_virtual_paths(k, 2))


# ----------------------------------------------------------------------
# Figure 5: average over all source-destination pairs of an n-cube
# ----------------------------------------------------------------------
def average_degree(n: int, ratio_at_distance) -> float:
    """Average ``ratio_at_distance(k)`` over all ordered pairs of an n-cube."""
    pairs = 2**n - 1  # per source; distances are source-independent
    return sum(comb(n, k) * ratio_at_distance(k) for k in range(1, n + 1)) / pairs


def figure5_series(max_dimension: int = 12) -> dict[str, list[float]]:
    """The three Figure-5 curves for hypercube dimensions 1..max_dimension."""
    dims = range(1, max_dimension + 1)
    return {
        "dimension": list(dims),
        "e-cube": [average_degree(n, ecube_ratio) for n in dims],
        "duato": [average_degree(n, duato_ratio) for n in dims],
        "enhanced": [average_degree(n, efa_ratio) for n in dims],
    }


# ----------------------------------------------------------------------
# brute-force cross-check on actual routing relations
# ----------------------------------------------------------------------
def empirical_pair_ratio(
    algorithm: RoutingAlgorithm,
    src: int,
    dest: int,
    total_paths: int,
    distance: int,
) -> float:
    """Permitted minimal virtual paths / ``total_paths`` for one pair."""
    permitted = sum(
        1
        for p in enumerate_paths(algorithm, src, dest, max_hops=distance)
        if len(p) == distance
    )
    return permitted / total_paths


def empirical_degree(algorithm: RoutingAlgorithm, *, vcs: int) -> float:
    """Brute-force degree of adaptiveness over all pairs (small networks!).

    ``vcs`` is the number of virtual channels the algorithm's own network
    configuration provides per link (the denominator convention above).
    """
    net = algorithm.network
    dist = net.shortest_distances()
    acc = 0.0
    pairs = 0
    for s in net.nodes:
        for d in net.nodes:
            if s == d:
                continue
            k = dist[s][d]
            acc += empirical_pair_ratio(algorithm, s, d, total_virtual_paths(k, vcs), k)
            pairs += 1
    return acc / pairs
