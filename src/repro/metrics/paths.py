"""Path-diversity metrics beyond the degree of adaptiveness.

Small helpers the benchmarks and examples use to characterize routing
algorithms: permitted-path counts per pair, physical-path coverage, and
edge-disjoint path counts (the property Li's hypercube algorithm optimizes,
mentioned in Section 9.1).
"""

from __future__ import annotations

from ..routing.paths import enumerate_paths, path_nodes
from ..routing.relation import RoutingAlgorithm


def minimal_path_matrix(algorithm: RoutingAlgorithm) -> dict[tuple[int, int], int]:
    """Permitted minimal-path count for every ordered pair."""
    net = algorithm.network
    dist = net.shortest_distances()
    out: dict[tuple[int, int], int] = {}
    for s in net.nodes:
        for d in net.nodes:
            if s == d:
                continue
            k = dist[s][d]
            if k < 0:  # unreachable (networks frozen without Definition 1)
                out[(s, d)] = 0
                continue
            out[(s, d)] = sum(
                1 for p in enumerate_paths(algorithm, s, d, max_hops=k) if len(p) == k
            )
    return out


def physical_path_coverage(algorithm: RoutingAlgorithm) -> float:
    """Fraction of minimal *physical* paths permitted, averaged over pairs.

    1.0 exactly for fully adaptive algorithms (Section 1's definition).
    """
    from ..routing.properties import _minimal_node_paths

    net = algorithm.network
    dist = net.shortest_distances()
    acc = 0.0
    pairs = 0
    for s in net.nodes:
        for d in net.nodes:
            if s == d:
                continue
            k = dist[s][d]
            if k < 0:  # unreachable pairs have no minimal paths to cover
                continue
            permitted = {
                tuple(path_nodes(p, s))
                for p in enumerate_paths(algorithm, s, d, max_hops=k)
                if len(p) == k
            }
            universe = _minimal_node_paths(net, s, d, k, dist)
            acc += len(permitted) / len(universe)
            pairs += 1
    return acc / pairs if pairs else 1.0


def max_edge_disjoint_minimal_paths(algorithm: RoutingAlgorithm, src: int, dest: int) -> int:
    """Largest set of pairwise physically edge-disjoint permitted minimal paths.

    Greedy maximum-set search with backtracking (pairs on the small
    verification networks only).
    """
    net = algorithm.network
    dist = net.shortest_distances()
    k = dist[src][dest]
    if k < 0:
        return 0
    paths = [
        frozenset(c.endpoints for c in p)
        for p in enumerate_paths(algorithm, src, dest, max_hops=k)
        if len(p) == k
    ]
    # dedupe identical physical paths (different VCs)
    paths = list(dict.fromkeys(paths))
    best = 0

    def search(i: int, used: frozenset, count: int) -> None:
        nonlocal best
        best = max(best, count)
        if i >= len(paths) or count + (len(paths) - i) <= best:
            return
        if not (paths[i] & used):
            search(i + 1, used | paths[i], count + 1)
        search(i + 1, used, count)

    search(0, frozenset(), 0)
    return best
