"""Export helpers: Graphviz DOT and text renderings of the channel graphs.

``to_dot`` works on any of the library's graph objects (CWG, CDG, ECDG --
anything exposing ``edges`` of channel pairs) and highlights a cycle or a
set of removed edges, which makes the Figure 2/3-style pictures of the
paper one ``dot -Tpng`` away.
"""

from __future__ import annotations

from collections.abc import Iterable

from .topology.channel import Channel

Edge = tuple[Channel, Channel]


def _name(c: Channel) -> str:
    return c.label or f"c{c.cid}"


def to_dot(
    graph,
    *,
    title: str = "",
    highlight: Iterable[Edge] = (),
    removed: Iterable[Edge] = (),
    include_isolated: bool = False,
) -> str:
    """Render a channel graph (CWG/CDG/ECDG) as Graphviz DOT.

    ``highlight`` edges are drawn bold red (e.g. a True Cycle);
    ``removed`` edges dashed grey (e.g. the Section 8 removals, turning the
    drawing into the paper's Figure 3).
    """
    hi = set(highlight)
    rm = set(removed)
    lines = ["digraph channels {"]
    if title:
        lines.append(f'  label="{title}"; labelloc=t;')
    lines.append("  node [shape=box, fontsize=10];")
    used: set[Channel] = set()
    for (a, b) in graph.edges:
        used.add(a)
        used.add(b)
    vertices = getattr(graph, "vertices", None)
    pool = vertices if (include_isolated and vertices is not None) else sorted(used, key=lambda c: c.cid)
    for c in pool:
        lines.append(f'  "{_name(c)}";')
    for (a, b) in graph.edges:
        attrs = ""
        if (a, b) in hi:
            attrs = ' [color=red, penwidth=2.0]'
        elif (a, b) in rm:
            attrs = ' [color=grey, style=dashed]'
        lines.append(f'  "{_name(a)}" -> "{_name(b)}"{attrs};')
    lines.append("}")
    return "\n".join(lines)


def edge_listing(graph, *, removed: Iterable[Edge] = ()) -> str:
    """Plain-text adjacency listing, removed edges marked with '-'."""
    rm = set(removed)
    rows = []
    for (a, b) in sorted(graph.edges, key=lambda e: (e[0].cid, e[1].cid)):
        mark = "-" if (a, b) in rm else " "
        rows.append(f" {mark} {_name(a)} -> {_name(b)}")
    return "\n".join(rows)


def verdict_block(verdict) -> str:
    """Multi-line rendering of a Verdict including its witness, if any."""
    lines = [verdict.summary()]
    cfg = verdict.evidence.get("deadlock_configuration")
    if cfg is not None:
        lines.append("deadlock configuration (Definition 12):")
        lines.extend("  " + ln for ln in cfg.describe().splitlines())
    red = verdict.evidence.get("reduction")
    if red is not None and red.removed:
        removed = ", ".join(sorted(f"{_name(a)}->{_name(b)}" for a, b in red.removed))
        lines.append(f"CWG' = CWG minus {{{removed}}}")
    return "\n".join(lines)
