"""Export helpers: Graphviz DOT, text renderings, and batch reports.

``to_dot`` works on any of the library's graph objects (CWG, CDG, ECDG --
anything exposing ``edges`` of channel pairs) and highlights a cycle or a
set of removed edges, which makes the Figure 2/3-style pictures of the
paper one ``dot -Tpng`` away.

``batch_to_json`` / ``batch_to_csv`` / ``batch_table`` render the
:class:`~repro.pipeline.engine.BatchReport` of a ``verify-batch`` sweep --
one machine-readable record (or CSV row) per (job, condition), plus the
aggregate cache statistics and per-stage timers/counters.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Iterable
from typing import TYPE_CHECKING

from .topology.channel import Channel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .pipeline.engine import BatchReport

Edge = tuple[Channel, Channel]


def _name(c: Channel) -> str:
    return c.label or f"c{c.cid}"


def to_dot(
    graph,
    *,
    title: str = "",
    highlight: Iterable[Edge] = (),
    removed: Iterable[Edge] = (),
    include_isolated: bool = False,
) -> str:
    """Render a channel graph (CWG/CDG/ECDG) as Graphviz DOT.

    ``highlight`` edges are drawn bold red (e.g. a True Cycle);
    ``removed`` edges dashed grey (e.g. the Section 8 removals, turning the
    drawing into the paper's Figure 3).
    """
    hi = set(highlight)
    rm = set(removed)
    lines = ["digraph channels {"]
    if title:
        lines.append(f'  label="{title}"; labelloc=t;')
    lines.append("  node [shape=box, fontsize=10];")
    used: set[Channel] = set()
    for (a, b) in graph.edges:
        used.add(a)
        used.add(b)
    vertices = getattr(graph, "vertices", None)
    pool = vertices if (include_isolated and vertices is not None) else sorted(used, key=lambda c: c.cid)
    for c in pool:
        lines.append(f'  "{_name(c)}";')
    for (a, b) in graph.edges:
        attrs = ""
        if (a, b) in hi:
            attrs = ' [color=red, penwidth=2.0]'
        elif (a, b) in rm:
            attrs = ' [color=grey, style=dashed]'
        lines.append(f'  "{_name(a)}" -> "{_name(b)}"{attrs};')
    lines.append("}")
    return "\n".join(lines)


def edge_listing(graph, *, removed: Iterable[Edge] = ()) -> str:
    """Plain-text adjacency listing, removed edges marked with '-'."""
    rm = set(removed)
    rows = []
    for (a, b) in sorted(graph.edges, key=lambda e: (e[0].cid, e[1].cid)):
        mark = "-" if (a, b) in rm else " "
        rows.append(f" {mark} {_name(a)} -> {_name(b)}")
    return "\n".join(rows)


# ----------------------------------------------------------------------
# batch verification reports (repro.pipeline)
# ----------------------------------------------------------------------
def batch_to_json(report: "BatchReport", *, indent: int = 2) -> str:
    """Full machine-readable rendering of a batch report."""
    doc = {
        "generator": "repro verify-batch",
        "seconds": round(report.seconds, 6),
        "workers": report.workers,
        "cache": report.cache,
        "metrics": report.metrics,
        "jobs": [
            {
                "algorithm": j.spec.algorithm,
                "topology": j.spec.topology.family,
                "topology_spec": j.spec.topology.describe(),
                "dims": list(j.spec.dims) if j.spec.dims else None,
                "vcs": j.spec.vcs,
                "network": j.network,
                "fingerprint": j.fingerprint,
                "seconds": round(j.seconds, 6),
                "error": j.error,
                "conditions": [
                    {
                        "key": r.key,
                        "condition": r.condition,
                        "deadlock_free": r.deadlock_free,
                        "necessary_and_sufficient": r.necessary_and_sufficient,
                        "cached": r.cached,
                        "seconds": round(r.seconds, 6),
                        "reason": r.reason,
                        "evidence": r.evidence,
                    }
                    for r in j.results
                ],
            }
            for j in report.jobs
        ],
    }
    return json.dumps(doc, indent=indent)


def batch_to_csv(report: "BatchReport") -> str:
    """One CSV row per (job, condition); errored jobs get a single row."""
    buf = io.StringIO()
    w = csv.writer(buf, lineterminator="\n")
    w.writerow([
        "algorithm", "topology", "network", "condition", "deadlock_free",
        "necessary_and_sufficient", "cached", "seconds", "reason",
    ])
    for j in report.jobs:
        if not j.ok:
            w.writerow([j.spec.algorithm, j.spec.topology.family, j.network,
                        "ERROR", "", "", "", f"{j.seconds:.6f}", j.error])
            continue
        for r in j.results:
            w.writerow([
                j.spec.algorithm, j.spec.topology.family, j.network, r.condition,
                r.deadlock_free, r.necessary_and_sufficient, r.cached,
                f"{r.seconds:.6f}", r.reason,
            ])
    return buf.getvalue()


def batch_table(report: "BatchReport") -> str:
    """Aligned text table plus the observability footer (the CLI default)."""
    headers = ["algorithm", "network", "condition", "safe", "iff", "cached", "time"]
    rows: list[tuple[str, ...]] = []
    for j in report.jobs:
        if not j.ok:
            rows.append((j.spec.algorithm, j.network or j.spec.topology.family,
                         "ERROR", "-", "-", "-", f"{j.seconds:.2f}s"))
            continue
        for r in j.results:
            rows.append((
                j.spec.algorithm, j.network, r.condition,
                "yes" if r.deadlock_free else "NO",
                "iff" if r.necessary_and_sufficient else "partial",
                "hit" if r.cached else "-",
                f"{r.seconds:.2f}s",
            ))
    widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
              for i, h in enumerate(headers)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines += ["  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows]
    lines.append("")
    lines.append(
        f"{len(report.jobs)} jobs ({len(report.errors)} errors) in "
        f"{report.seconds:.2f}s on {report.workers} worker(s)"
    )
    if report.cache:
        lines.append(
            f"cache: {report.cache.get('hits', 0)} hits, "
            f"{report.cache.get('misses', 0)} misses, "
            f"{report.cache.get('stores', 0)} stores"
        )
    timers = report.metrics.get("timers", {})
    counters = report.metrics.get("counters", {})
    if timers:
        lines.append("stage timers: " + ", ".join(f"{k}={v:.3f}s" for k, v in timers.items()))
    if counters:
        lines.append("counters: " + ", ".join(f"{k}={v}" for k, v in counters.items()))
    return "\n".join(lines)


def graph_stats_block(graph) -> str:
    """Text rendering of a channel graph's kernel summary.

    Works on any builder exposing a ``dep`` :class:`~repro.core.depgraph.DepGraph`
    (CWG, CDG, ECDG): one line per headline structure fact plus the
    content-addressed fingerprint the pipeline caches key on.
    """
    dep = graph.dep
    s = dep.summary()
    lines = [
        f"kind             {graph.kind}",
        f"vertices         {s['vertices']}",
        f"edges            {s['edges']}",
        f"self loops       {s['self_loops']}",
        f"sccs             {s['sccs']}",
        f"nontrivial sccs  {s['nontrivial_sccs']}",
        f"largest scc      {s['largest_scc']}",
        f"acyclic          {'yes' if s['acyclic'] else 'no'}",
        f"fingerprint      {dep.fingerprint()}",
    ]
    return "\n".join(lines)


def verdict_block(verdict) -> str:
    """Multi-line rendering of a Verdict including its witness, if any."""
    lines = [verdict.summary()]
    cfg = verdict.evidence.get("deadlock_configuration")
    if cfg is not None:
        lines.append("deadlock configuration (Definition 12):")
        lines.extend("  " + ln for ln in cfg.describe().splitlines())
    red = verdict.evidence.get("reduction")
    if red is not None and red.removed:
        removed = ", ".join(sorted(f"{_name(a)}->{_name(b)}" for a, b in red.removed))
        lines.append(f"CWG' = CWG minus {{{removed}}}")
    return "\n".join(lines)
