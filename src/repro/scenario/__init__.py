"""First-class scenario registry: declarative (relation, topology, policy) specs.

Every driver in this repository -- the verification pipeline, the simulator
sweep, the golden digest matrix, the fuzz generators, the CLI, the
benchmarks -- used to carry its own private ``(algorithm, topology, dims,
vcs)`` tuple convention.  This package replaces all of them with one
declarative layer:

* :class:`TopologySpec` -- a frozen, hashable topology instance with stable
  string (``sparse-pillar:3x3x3:v2:pillars=0.0+1.0+2.0``) and JSON codecs;
* :class:`ScenarioSpec` -- a named scenario: relation factory, canonical
  topology, VC requirement, expected verdict, and the per-scenario
  output-selection policy knob;
* the registry (:func:`get` / :func:`names` / :func:`all_specs` /
  :func:`for_family`) that ``repro.routing.catalog`` populates and every
  driver resolves scenarios through.

Adding a topology family now means one :func:`register_family` call plus one
:func:`register` per scenario -- no driver changes.
"""

from .registry import (
    REGISTRY,
    all_specs,
    build_topology,
    family_names,
    for_family,
    get,
    names,
    register,
    register_family,
)
from .specs import ScenarioSpec, TopologySpec

__all__ = [
    "REGISTRY",
    "ScenarioSpec",
    "TopologySpec",
    "all_specs",
    "build_topology",
    "family_names",
    "for_family",
    "get",
    "names",
    "register",
    "register_family",
]
