"""The scenario registry and the topology family dispatch.

Two registries live here:

* **families** -- ``family name -> builder(TopologySpec) -> Network``.  The
  standard families (mesh, torus, hypercube, figure1, figure4, mesh3d,
  sparse-pillar) register at import; plugins (tests, fuzz generators) may
  add more via :func:`register_family`.
* **scenarios** -- ``name -> ScenarioSpec``.  ``repro.routing.catalog``
  populates it with every relation the repository certifies; the mapping
  object itself is exported there as ``CATALOG`` for backward-compatible
  iteration (``sorted(CATALOG)``, membership tests, ``CATALOG[name]``).

This module imports only :mod:`repro.topology`, never :mod:`repro.routing`,
so relation modules are free to import it for registration.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

from ..topology import (
    build_figure1_network,
    build_figure4_ring,
    build_hypercube,
    build_mesh,
    build_torus,
)
from ..topology.mesh3d import build_mesh3d, build_sparse_pillar_3d
from ..topology.network import Network
from .specs import ScenarioSpec, TopologySpec

# ----------------------------------------------------------------------
# topology families
# ----------------------------------------------------------------------
FamilyBuilder = Callable[[TopologySpec], Network]

_FAMILIES: dict[str, FamilyBuilder] = {}


def register_family(name: str, builder: FamilyBuilder, *, replace: bool = False) -> None:
    if not replace and name in _FAMILIES:
        raise ValueError(f"topology family {name!r} already registered")
    _FAMILIES[name] = builder


def family_names() -> tuple[str, ...]:
    return tuple(sorted(_FAMILIES))


def build_topology(spec: TopologySpec) -> Network:
    """Materialize a :class:`TopologySpec` via its family builder."""
    try:
        builder = _FAMILIES[spec.family]
    except KeyError:
        raise ValueError(
            f"unknown topology family {spec.family!r}; known: {family_names()}"
        ) from None
    return builder(spec)


def _need_dims(spec: TopologySpec, arity: int | None = None) -> tuple[int, ...]:
    if spec.dims is None:
        raise ValueError(f"topology family {spec.family!r} needs dims (got {spec!r})")
    if arity is not None and len(spec.dims) != arity:
        raise ValueError(
            f"topology family {spec.family!r} needs {arity} dims, got {spec.dims}")
    return spec.dims


def _build_mesh(spec: TopologySpec) -> Network:
    return build_mesh(_need_dims(spec), num_vcs=spec.vcs or 1)


def _build_torus(spec: TopologySpec) -> Network:
    return build_torus(_need_dims(spec), num_vcs=spec.vcs or 1)


def _build_hypercube(spec: TopologySpec) -> Network:
    return build_hypercube(_need_dims(spec, 1)[0], num_vcs=spec.vcs or 1)


def _build_mesh3d(spec: TopologySpec) -> Network:
    return build_mesh3d(_need_dims(spec, 3), num_vcs=spec.vcs or 2)


def _build_sparse_pillar(spec: TopologySpec) -> Network:
    return build_sparse_pillar_3d(
        _need_dims(spec, 3),
        pillars=spec.param_map.get("pillars"),
        num_vcs=spec.vcs or 2,
    )


register_family("mesh", _build_mesh)
register_family("torus", _build_torus)
register_family("hypercube", _build_hypercube)
register_family("figure1", lambda spec: build_figure1_network())
register_family("figure4", lambda spec: build_figure4_ring())
register_family("mesh3d", _build_mesh3d)
register_family("sparse-pillar", _build_sparse_pillar)


# ----------------------------------------------------------------------
# scenario registry
# ----------------------------------------------------------------------
#: the live registry mapping; ``routing.catalog.CATALOG`` is this object
REGISTRY: dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec, *, replace: bool = False) -> ScenarioSpec:
    if not replace and spec.name in REGISTRY:
        raise ValueError(f"scenario {spec.name!r} already registered")
    if spec.topology.family not in _FAMILIES:
        raise ValueError(
            f"scenario {spec.name!r} uses unregistered family {spec.topology.family!r}")
    REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> ScenarioSpec:
    """Look up a scenario; raises with the known names on a miss."""
    _ensure_populated()
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(REGISTRY))}"
        ) from None


def names() -> tuple[str, ...]:
    _ensure_populated()
    return tuple(sorted(REGISTRY))


def all_specs() -> Iterator[ScenarioSpec]:
    _ensure_populated()
    for name in sorted(REGISTRY):
        yield REGISTRY[name]


def for_family(family: str) -> list[ScenarioSpec]:
    """Every registered scenario whose canonical topology is ``family``."""
    return [spec for spec in all_specs() if spec.family == family]


def _ensure_populated() -> None:
    # The relation catalog registers its scenarios at import; importing it
    # here (not at module import) keeps the topology-only dependency rule.
    if not REGISTRY:
        from ..routing import catalog  # noqa: F401
