"""Frozen scenario specs and their stable string/JSON codecs.

A *scenario* is everything a driver needs to reproduce one verification or
simulation setup: a named routing relation, the topology instance it runs
on, and the simulator policy knobs (virtual-channel count, output-selection
policy).  Before this layer existed every driver encoded that as its own
``(algorithm, topology, dims, vcs)`` tuple convention; these dataclasses are
the single replacement.

Codecs
------
``TopologySpec.describe()`` renders a stable, order-independent string form
(``sparse-pillar:3x3x3:v2:pillars=0.0+1.0+2.0``) that
:func:`TopologySpec.parse` round-trips; ``to_json``/``from_json`` do the
same for JSON documents.  Both forms are pinned by tests -- they appear in
sweep output, golden-case identifiers, and the corpus, so changing them is a
fixture-regeneration event, not a refactor.
"""

from __future__ import annotations

import dataclasses
import re
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # import cycle: routing imports scenario for registration
    from ..routing.relation import RoutingAlgorithm
    from ..topology.network import Network

#: parameter keys the codecs understand; anything else is rejected eagerly
#: so a typo cannot silently produce an unreproducible spec string.
_PARAM_CODECS: dict[str, tuple[Callable[[Any], str], Callable[[str], Any]]] = {
    "pillars": (
        lambda v: "+".join(f"{x}.{y}" for x, y in v),
        lambda s: tuple(tuple(int(p) for p in part.split(".")) for part in s.split("+")),
    ),
}

_DIMS_RE = re.compile(r"^\d+(x\d+)*$")
_VCS_RE = re.compile(r"^v\d+$")


def _freeze_params(params: Mapping[str, Any] | Sequence[tuple[str, Any]] | None,
                   ) -> tuple[tuple[str, Any], ...]:
    if not params:
        return ()
    items = sorted(dict(params).items())
    for key, _ in items:
        if key not in _PARAM_CODECS:
            raise ValueError(
                f"unknown topology parameter {key!r}; known: {sorted(_PARAM_CODECS)}")
    return tuple(items)


@dataclass(frozen=True)
class TopologySpec:
    """One reproducible topology instance: family + dims + VCs + extras.

    ``dims`` is ``None`` for fixed example networks (figure1/figure4);
    ``vcs`` is ``None`` when the consuming scenario's ``min_vcs`` should
    decide.  ``params`` holds family-specific extras (currently the kept
    ``pillars`` of the sparse-pillar family) as a sorted key/value tuple so
    the spec stays hashable and order-independent.
    """

    family: str
    dims: tuple[int, ...] | None = None
    vcs: int | None = None
    params: tuple[tuple[str, Any], ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "dims",
                           None if self.dims is None else tuple(int(d) for d in self.dims))
        object.__setattr__(self, "params", _freeze_params(self.params))

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def param_map(self) -> dict[str, Any]:
        return dict(self.params)

    def with_dims(self, dims: Sequence[int] | int | None) -> "TopologySpec":
        """A copy with replaced ``dims`` (ints become 1-tuples: hypercube order)."""
        if dims is None:
            return self
        if isinstance(dims, int):
            dims = (dims,)
        return dataclasses.replace(self, dims=tuple(int(d) for d in dims))

    def with_vcs(self, vcs: int | None) -> "TopologySpec":
        return self if vcs is None else dataclasses.replace(self, vcs=int(vcs))

    def build(self) -> "Network":
        """Materialize the network via the registered family builder."""
        from .registry import build_topology

        return build_topology(self)

    # ------------------------------------------------------------------
    # string codec
    # ------------------------------------------------------------------
    def describe(self) -> str:
        parts = [self.family]
        if self.dims is not None:
            parts.append("x".join(str(d) for d in self.dims))
        if self.vcs is not None:
            parts.append(f"v{self.vcs}")
        for key, value in self.params:
            render, _ = _PARAM_CODECS[key]
            parts.append(f"{key}={render(value)}")
        return ":".join(parts)

    @classmethod
    def parse(cls, text: str) -> "TopologySpec":
        parts = text.split(":")
        if not parts or not parts[0]:
            raise ValueError(f"empty topology spec {text!r}")
        family = parts[0]
        dims: tuple[int, ...] | None = None
        vcs: int | None = None
        params: dict[str, Any] = {}
        for token in parts[1:]:
            if _DIMS_RE.match(token):
                dims = tuple(int(d) for d in token.split("x"))
            elif _VCS_RE.match(token):
                vcs = int(token[1:])
            elif "=" in token:
                key, _, raw = token.partition("=")
                if key not in _PARAM_CODECS:
                    raise ValueError(f"unknown topology parameter {key!r} in {text!r}")
                params[key] = _PARAM_CODECS[key][1](raw)
            else:
                raise ValueError(f"unparseable topology token {token!r} in {text!r}")
        return cls(family=family, dims=dims, vcs=vcs, params=tuple(sorted(params.items())))

    # ------------------------------------------------------------------
    # JSON codec
    # ------------------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        return {
            "family": self.family,
            "dims": None if self.dims is None else list(self.dims),
            "vcs": self.vcs,
            "params": {k: [list(p) for p in v] if k == "pillars" else v
                       for k, v in self.params},
        }

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "TopologySpec":
        params: dict[str, Any] = {}
        for key, value in (doc.get("params") or {}).items():
            if key == "pillars":
                value = tuple(tuple(int(c) for c in p) for p in value)
            params[key] = value
        dims = doc.get("dims")
        return cls(
            family=str(doc["family"]),
            dims=None if dims is None else tuple(int(d) for d in dims),
            vcs=None if doc.get("vcs") is None else int(doc["vcs"]),
            params=tuple(sorted(params.items())),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered scenario: relation factory + canonical topology + knobs.

    This is the former ``routing.catalog.CatalogEntry`` with the topology
    string widened to a full :class:`TopologySpec` and the simulator's
    output-selection policy added as a per-scenario knob.  ``topology`` is
    the *canonical verification-sized* instance; drivers that want other
    sizes derive them with :meth:`topology_for` / ``TopologySpec.with_dims``
    rather than inventing their own dims convention.
    """

    #: registry key, e.g. ``"duato-mesh"``
    name: str
    #: builds the relation on a compatible network
    factory: Callable[["Network"], "RoutingAlgorithm"] = field(compare=False)
    #: canonical topology instance (family + verify-sized dims)
    topology: TopologySpec = field()
    #: virtual channels the relation needs
    min_vcs: int = 1
    #: "nonadaptive", "partial", or "full"
    adaptivity: str = "nonadaptive"
    #: the expected verdict (pinned against the verifiers by CI)
    deadlock_free: bool = True
    #: which result certifies / refutes it
    certified_by: str = ""
    notes: str = ""
    #: named output-selection policy (see ``repro.routing.selection.SELECTIONS``)
    selection: str = "first-free"

    @property
    def family(self) -> str:
        return self.topology.family

    def topology_for(self,
                     family_dims: Mapping[str, Sequence[int] | int] | None = None,
                     *, dims: Sequence[int] | int | None = None,
                     vcs: int | None = None) -> TopologySpec:
        """The canonical topology resized for a driver's context.

        ``family_dims`` maps family name -> dims override (how sweep/pipeline
        express "meshes at 8x8, hypercubes at dimension 5"); an explicit
        ``dims`` wins over it.  A missing ``vcs`` resolves to ``min_vcs`` so
        the built network always carries enough virtual channels.
        """
        spec = self.topology
        if dims is not None:
            spec = spec.with_dims(dims)
        elif family_dims and spec.family in family_dims:
            spec = spec.with_dims(family_dims[spec.family])
        if vcs is not None:
            spec = spec.with_vcs(vcs)
        elif spec.vcs is None:
            spec = spec.with_vcs(self.min_vcs)
        return spec

    def instantiate(self,
                    family_dims: Mapping[str, Sequence[int] | int] | None = None,
                    *, dims: Sequence[int] | int | None = None,
                    vcs: int | None = None,
                    network: "Network | None" = None) -> "RoutingAlgorithm":
        """Build the network (unless given) and the relation on it."""
        if network is None:
            network = self.topology_for(family_dims, dims=dims, vcs=vcs).build()
        return self.factory(network)

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "topology": self.topology.to_json(),
            "min_vcs": self.min_vcs,
            "adaptivity": self.adaptivity,
            "deadlock_free": self.deadlock_free,
            "certified_by": self.certified_by,
            "notes": self.notes,
            "selection": self.selection,
        }
